package fo

import (
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Compiled is a sentence translated into a closure tree with slot-indexed
// variable bindings: evaluation allocates no maps and performs no AST
// dispatch, which makes repeated evaluation (certain answers over many
// candidates, benchmark loops) several times faster than Eval.
type Compiled struct {
	numSlots int
	freeSlot map[string]int
	eval     compiledNode
	consts   []string
}

type compiledNode func(env []string, d *db.DB, domain []string) bool

// Compile translates a formula. Free variables become parameters that must
// be bound via EvalWith; sentences evaluate with Eval. Panics on malformed
// hand-built formulas are converted into errors.
func Compile(f Formula) (c *Compiled, err error) {
	defer containPanic(&err)
	c = &Compiled{freeSlot: make(map[string]int)}
	slots := make(map[string]int)
	for x := range FreeVars(f) {
		slots[x] = c.numSlots
		c.freeSlot[x] = c.numSlots
		c.numSlots++
	}
	seen := make(map[string]bool)
	collectConstants(f, func(v string) {
		if !seen[v] {
			seen[v] = true
			c.consts = append(c.consts, v)
		}
	})
	node, err := c.compile(f, slots)
	if err != nil {
		return nil, err
	}
	c.eval = node
	return c, nil
}

func (c *Compiled) compile(f Formula, slots map[string]int) (compiledNode, error) {
	switch g := f.(type) {
	case Truth:
		v := bool(g)
		return func([]string, *db.DB, []string) bool { return v }, nil
	case Atom:
		rel, keyLen := g.A.Rel, g.A.KeyLen
		type argSrc struct {
			slot  int    // -1 for constant
			value string // constant value
		}
		srcs := make([]argSrc, len(g.A.Args))
		for i, t := range g.A.Args {
			if t.IsConst {
				srcs[i] = argSrc{slot: -1, value: t.Value}
				continue
			}
			slot, ok := slots[t.Value]
			if !ok {
				return nil, fmt.Errorf("fo: unbound variable %s in %s", t.Value, g.A)
			}
			srcs[i] = argSrc{slot: slot}
		}
		return func(env []string, d *db.DB, _ []string) bool {
			args := make([]string, len(srcs))
			for i, s := range srcs {
				if s.slot < 0 {
					args[i] = s.value
				} else {
					args[i] = env[s.slot]
				}
			}
			return d.Has(db.Fact{Rel: rel, KeyLen: keyLen, Args: args})
		}, nil
	case Eq:
		l, err := c.compileTerm(g.L, slots)
		if err != nil {
			return nil, err
		}
		r, err := c.compileTerm(g.R, slots)
		if err != nil {
			return nil, err
		}
		return func(env []string, _ *db.DB, _ []string) bool {
			return l(env) == r(env)
		}, nil
	case Not:
		sub, err := c.compile(g.F, slots)
		if err != nil {
			return nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
			return !sub(env, d, dom)
		}, nil
	case And:
		subs, err := c.compileAll(g.Fs, slots)
		if err != nil {
			return nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
			for _, s := range subs {
				if !s(env, d, dom) {
					return false
				}
			}
			return true
		}, nil
	case Or:
		subs, err := c.compileAll(g.Fs, slots)
		if err != nil {
			return nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
			for _, s := range subs {
				if s(env, d, dom) {
					return true
				}
			}
			return false
		}, nil
	case Implies:
		hyp, err := c.compile(g.Hyp, slots)
		if err != nil {
			return nil, err
		}
		concl, err := c.compile(g.Concl, slots)
		if err != nil {
			return nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
			return !hyp(env, d, dom) || concl(env, d, dom)
		}, nil
	case Exists:
		return c.compileQuantifier(g.Vars, g.F, slots, true)
	case Forall:
		return c.compileQuantifier(g.Vars, g.F, slots, false)
	default:
		return nil, fmt.Errorf("fo: cannot compile %T", f)
	}
}

func (c *Compiled) compileQuantifier(vars []string, body Formula, slots map[string]int, existential bool) (compiledNode, error) {
	inner := make(map[string]int, len(slots)+len(vars))
	for k, v := range slots {
		inner[k] = v
	}
	varSlots := make([]int, len(vars))
	for i, v := range vars {
		inner[v] = c.numSlots
		varSlots[i] = c.numSlots
		c.numSlots++
	}
	sub, err := c.compile(body, inner)
	if err != nil {
		return nil, err
	}
	n := len(varSlots)
	return func(env []string, d *db.DB, dom []string) bool {
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				return sub(env, d, dom)
			}
			for _, v := range dom {
				env[varSlots[i]] = v
				ok := rec(i + 1)
				if existential && ok {
					return true
				}
				if !existential && !ok {
					return false
				}
			}
			return !existential
		}
		return rec(0)
	}, nil
}

func (c *Compiled) compileAll(fs []Formula, slots map[string]int) ([]compiledNode, error) {
	out := make([]compiledNode, len(fs))
	for i, f := range fs {
		sub, err := c.compile(f, slots)
		if err != nil {
			return nil, err
		}
		out[i] = sub
	}
	return out, nil
}

func (c *Compiled) compileTerm(t cq.Term, slots map[string]int) (func([]string) string, error) {
	if t.IsConst {
		v := t.Value
		return func([]string) string { return v }, nil
	}
	slot, ok := slots[t.Value]
	if !ok {
		return nil, fmt.Errorf("fo: unbound variable %s", t.Value)
	}
	return func(env []string) string { return env[slot] }, nil
}

// domain assembles the quantification domain for a database.
func (c *Compiled) domain(d *db.DB) []string {
	dom := d.ActiveDomain()
	seen := make(map[string]bool, len(dom))
	for _, v := range dom {
		seen[v] = true
	}
	for _, v := range c.consts {
		if !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	return dom
}

// Eval evaluates a compiled sentence; it fails if the formula has free
// variables.
func (c *Compiled) Eval(d *db.DB) (ok bool, err error) {
	defer containPanic(&err)
	if len(c.freeSlot) > 0 {
		return false, fmt.Errorf("fo: compiled formula has free variables; use EvalWith")
	}
	env := make([]string, c.numSlots)
	return c.eval(env, d, c.domain(d)), nil
}

// EvalWith evaluates with the free variables bound by env.
func (c *Compiled) EvalWith(d *db.DB, binding cq.Valuation) (ok bool, err error) {
	defer containPanic(&err)
	env := make([]string, c.numSlots)
	for x, slot := range c.freeSlot {
		v, ok := binding[x]
		if !ok {
			return false, fmt.Errorf("fo: unbound free variable %s", x)
		}
		env[slot] = v
	}
	dom := c.domain(d)
	// Free-variable values participate in quantification like constants.
	seen := make(map[string]bool, len(dom))
	for _, v := range dom {
		seen[v] = true
	}
	for _, v := range binding {
		if !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	return c.eval(env, d, dom), nil
}
