package fo

import (
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Compiled is a sentence translated into a closure tree with slot-indexed
// variable bindings: evaluation allocates no maps and performs no AST
// dispatch, which makes repeated evaluation (certain answers over many
// candidates, benchmark loops) several times faster than Eval.
//
// Compilation produces two parallel trees over the same slot numbering: a
// string tree (env []string, d.Has probes) and an interned tree (env
// []uint32, columnar HasTuple probes). Eval runs the interned tree unless
// SetInterned has deselected it; both decide the same sentences.
type Compiled struct {
	numSlots int
	freeSlot map[string]int
	eval     compiledNode
	consts   []string

	ieval    inode      // interned tree (see interned.go)
	iatoms   []iAtomRef // atom ordinal → relation reference to resolve per DB
	maxArity int
	constOrd map[string]int // constant value → ordinal in consts
}

type compiledNode func(env []string, d *db.DB, domain []string) bool

// Compile translates a formula. Free variables become parameters that must
// be bound via EvalWith; sentences evaluate with Eval. Panics on malformed
// hand-built formulas are converted into errors.
func Compile(f Formula) (c *Compiled, err error) {
	defer containPanic(&err)
	c = &Compiled{freeSlot: make(map[string]int), constOrd: make(map[string]int)}
	slots := make(map[string]int)
	for x := range FreeVars(f) {
		slots[x] = c.numSlots
		c.freeSlot[x] = c.numSlots
		c.numSlots++
	}
	collectConstants(f, func(v string) {
		if _, ok := c.constOrd[v]; !ok {
			c.constOrd[v] = len(c.consts)
			c.consts = append(c.consts, v)
		}
	})
	node, in, err := c.compile(f, slots)
	if err != nil {
		return nil, err
	}
	c.eval = node
	c.ieval = in
	return c, nil
}

// iref is one compiled argument of the interned tree: a constant ordinal
// (resolved to an id per database) or an environment slot.
type iref struct {
	constIdx int // -1 for a variable
	slot     int
}

func (c *Compiled) compileRef(t cq.Term, slots map[string]int) (func([]string) string, iref, error) {
	if t.IsConst {
		v := t.Value
		ord, ok := c.constOrd[v]
		if !ok {
			return nil, iref{}, fmt.Errorf("fo: constant %q missing from constant table", v)
		}
		return func([]string) string { return v }, iref{constIdx: ord}, nil
	}
	slot, ok := slots[t.Value]
	if !ok {
		return nil, iref{}, fmt.Errorf("fo: unbound variable %s", t.Value)
	}
	return func(env []string) string { return env[slot] }, iref{constIdx: -1, slot: slot}, nil
}

func (c *Compiled) compile(f Formula, slots map[string]int) (compiledNode, inode, error) {
	switch g := f.(type) {
	case Truth:
		v := bool(g)
		return func([]string, *db.DB, []string) bool { return v },
			func(*irt) bool { return v }, nil
	case Atom:
		rel, keyLen := g.A.Rel, g.A.KeyLen
		srcs := make([]iref, len(g.A.Args))
		for i, t := range g.A.Args {
			_, ref, err := c.compileRef(t, slots)
			if err != nil {
				return nil, nil, fmt.Errorf("%w in %s", err, g.A)
			}
			srcs[i] = ref
		}
		if len(srcs) > c.maxArity {
			c.maxArity = len(srcs)
		}
		ord := len(c.iatoms)
		c.iatoms = append(c.iatoms, iAtomRef{rel: rel, arity: len(srcs)})
		str := func(env []string, d *db.DB, _ []string) bool {
			args := make([]string, len(srcs))
			for i, s := range srcs {
				if s.constIdx >= 0 {
					args[i] = c.consts[s.constIdx]
				} else {
					args[i] = env[s.slot]
				}
			}
			return d.Has(db.Fact{Rel: rel, KeyLen: keyLen, Args: args})
		}
		in := func(rt *irt) bool {
			r := rt.rels[ord]
			if r == nil {
				return false
			}
			args := rt.args[:len(srcs)]
			for i, s := range srcs {
				args[i] = rt.resolve(s)
			}
			return r.HasTuple(args)
		}
		return str, in, nil
	case Eq:
		l, li, err := c.compileRef(g.L, slots)
		if err != nil {
			return nil, nil, err
		}
		r, ri, err := c.compileRef(g.R, slots)
		if err != nil {
			return nil, nil, err
		}
		return func(env []string, _ *db.DB, _ []string) bool {
				return l(env) == r(env)
			}, func(rt *irt) bool {
				return rt.resolve(li) == rt.resolve(ri)
			}, nil
	case Not:
		sub, isub, err := c.compile(g.F, slots)
		if err != nil {
			return nil, nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
				return !sub(env, d, dom)
			}, func(rt *irt) bool {
				return !isub(rt)
			}, nil
	case And:
		subs, isubs, err := c.compileAll(g.Fs, slots)
		if err != nil {
			return nil, nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
				for _, s := range subs {
					if !s(env, d, dom) {
						return false
					}
				}
				return true
			}, func(rt *irt) bool {
				for _, s := range isubs {
					if !s(rt) {
						return false
					}
				}
				return true
			}, nil
	case Or:
		subs, isubs, err := c.compileAll(g.Fs, slots)
		if err != nil {
			return nil, nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
				for _, s := range subs {
					if s(env, d, dom) {
						return true
					}
				}
				return false
			}, func(rt *irt) bool {
				for _, s := range isubs {
					if s(rt) {
						return true
					}
				}
				return false
			}, nil
	case Implies:
		hyp, ihyp, err := c.compile(g.Hyp, slots)
		if err != nil {
			return nil, nil, err
		}
		concl, iconcl, err := c.compile(g.Concl, slots)
		if err != nil {
			return nil, nil, err
		}
		return func(env []string, d *db.DB, dom []string) bool {
				return !hyp(env, d, dom) || concl(env, d, dom)
			}, func(rt *irt) bool {
				return !ihyp(rt) || iconcl(rt)
			}, nil
	case Exists:
		return c.compileQuantifier(g.Vars, g.F, slots, true)
	case Forall:
		return c.compileQuantifier(g.Vars, g.F, slots, false)
	default:
		return nil, nil, fmt.Errorf("fo: cannot compile %T", f)
	}
}

func (c *Compiled) compileQuantifier(vars []string, body Formula, slots map[string]int, existential bool) (compiledNode, inode, error) {
	inner := make(map[string]int, len(slots)+len(vars))
	for k, v := range slots {
		inner[k] = v
	}
	varSlots := make([]int, len(vars))
	for i, v := range vars {
		inner[v] = c.numSlots
		varSlots[i] = c.numSlots
		c.numSlots++
	}
	sub, isub, err := c.compile(body, inner)
	if err != nil {
		return nil, nil, err
	}
	n := len(varSlots)
	str := func(env []string, d *db.DB, dom []string) bool {
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				return sub(env, d, dom)
			}
			for _, v := range dom {
				env[varSlots[i]] = v
				ok := rec(i + 1)
				if existential && ok {
					return true
				}
				if !existential && !ok {
					return false
				}
			}
			return !existential
		}
		return rec(0)
	}
	in := func(rt *irt) bool {
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				return isub(rt)
			}
			for _, v := range rt.dom {
				rt.env[varSlots[i]] = v
				ok := rec(i + 1)
				if existential && ok {
					return true
				}
				if !existential && !ok {
					return false
				}
			}
			return !existential
		}
		return rec(0)
	}
	return str, in, nil
}

func (c *Compiled) compileAll(fs []Formula, slots map[string]int) ([]compiledNode, []inode, error) {
	out := make([]compiledNode, len(fs))
	iout := make([]inode, len(fs))
	for i, f := range fs {
		sub, isub, err := c.compile(f, slots)
		if err != nil {
			return nil, nil, err
		}
		out[i] = sub
		iout[i] = isub
	}
	return out, iout, nil
}

// domain assembles the quantification domain for a database.
func (c *Compiled) domain(d *db.DB) []string {
	dom := d.ActiveDomain()
	seen := make(map[string]bool, len(dom))
	for _, v := range dom {
		seen[v] = true
	}
	for _, v := range c.consts {
		if !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	return dom
}

// Eval evaluates a compiled sentence; it fails if the formula has free
// variables. It runs on the interned plane unless SetInterned has
// deselected it.
func (c *Compiled) Eval(d *db.DB) (ok bool, err error) {
	if internedOn.Load() && c.ieval != nil {
		return c.evalInterned(d)
	}
	return c.EvalIndexed(d)
}

// EvalIndexed evaluates the string closure tree — the reference the
// interned plane is differentially tested against.
func (c *Compiled) EvalIndexed(d *db.DB) (ok bool, err error) {
	defer containPanic(&err)
	if len(c.freeSlot) > 0 {
		return false, fmt.Errorf("fo: compiled formula has free variables; use EvalWith")
	}
	env := make([]string, c.numSlots)
	return c.eval(env, d, c.domain(d)), nil
}

// EvalWith evaluates with the free variables bound by env.
func (c *Compiled) EvalWith(d *db.DB, binding cq.Valuation) (ok bool, err error) {
	defer containPanic(&err)
	env := make([]string, c.numSlots)
	for x, slot := range c.freeSlot {
		v, ok := binding[x]
		if !ok {
			return false, fmt.Errorf("fo: unbound free variable %s", x)
		}
		env[slot] = v
	}
	dom := c.domain(d)
	// Free-variable values participate in quantification like constants.
	seen := make(map[string]bool, len(dom))
	for _, v := range dom {
		seen[v] = true
	}
	for _, v := range binding {
		if !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	return c.eval(env, d, dom), nil
}
