package fo

import (
	"errors"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
)

// bogus is a Formula implementation the evaluator does not know, standing
// in for any malformed hand-built AST reaching the public entry points.
type bogus struct{}

func (bogus) String() string                    { return "bogus" }
func (bogus) rename(map[string]cq.Term) Formula { return bogus{} }

func TestPanicsBecomeErrors(t *testing.T) {
	d := db.MustParse("R(a | b)")
	var pe *govern.PanicError

	if _, err := Eval(bogus{}, d); !errors.As(err, &pe) {
		t.Errorf("Eval(bogus): got %v, want PanicError", err)
	}
	if _, err := EvalWith(bogus{}, d, cq.Valuation{}); !errors.As(err, &pe) {
		t.Errorf("EvalWith(bogus): got %v, want PanicError", err)
	}
	if _, err := Compile(bogus{}); !errors.As(err, &pe) {
		t.Errorf("Compile(bogus): got %v, want PanicError", err)
	}
	if _, err := SQL(bogus{}); !errors.As(err, &pe) {
		t.Errorf("SQL(bogus): got %v, want PanicError", err)
	}
}

func TestGuardedEntryPointsStillWork(t *testing.T) {
	d := db.MustParse("R(a | b)")
	phi := Exists{Vars: []string{"x", "y"}, F: Atom{A: cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y"))}}
	ok, err := Eval(phi, d)
	if err != nil || !ok {
		t.Fatalf("Eval: got (%v, %v), want (true, nil)", ok, err)
	}
	c, err := Compile(phi)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ok, err = c.Eval(d)
	if err != nil || !ok {
		t.Fatalf("Compiled.Eval: got (%v, %v), want (true, nil)", ok, err)
	}
}
