package fo

import (
	"fmt"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// SQL renders the sentence as a SQL boolean expression, assuming:
//
//   - each relation R of arity n is a table R(c1, ..., cn);
//   - a unary view adom(v) materializes the active domain, e.g.
//     CREATE VIEW adom AS SELECT c1 AS v FROM R UNION SELECT c2 FROM R ...;
//   - quantifiers range over adom.
//
// Variables become correlated references to adom rows. The output is
// suitable for `SELECT <expr>;` in any SQL dialect with EXISTS.
//
// String literals use standard ”-doubling and identifiers ""-doubling;
// backslashes pass through verbatim, which is correct for
// standard-conforming dialects (set standard_conforming_strings, or avoid
// MySQL's NO_BACKSLASH_ESCAPES=off). Names or constants containing NUL are
// rejected outright — like the snapshot parsers, we refuse to emit a byte
// most engines truncate at.
func SQL(f Formula) (sql string, err error) {
	defer containPanic(&err)
	if free := FreeVars(f); free.Len() > 0 {
		return "", fmt.Errorf("fo: SQL requires a sentence; free variables %v", free)
	}
	if err := rejectNUL(f); err != nil {
		return "", err
	}
	return sqlExpr(f), nil
}

// rejectNUL walks the sentence and fails on any relation name, constant,
// or variable containing a NUL byte.
func rejectNUL(f Formula) error {
	check := func(what, s string) error {
		if strings.ContainsRune(s, 0) {
			return fmt.Errorf("fo: SQL: %s %q contains NUL", what, s)
		}
		return nil
	}
	checkTerm := func(t cq.Term) error {
		if t.IsConst {
			return check("constant", t.Value)
		}
		return check("variable", t.Value)
	}
	var walk func(Formula) error
	walk = func(f Formula) error {
		switch g := f.(type) {
		case Truth:
			return nil
		case Atom:
			if err := check("relation", g.A.Rel); err != nil {
				return err
			}
			for _, t := range g.A.Args {
				if err := checkTerm(t); err != nil {
					return err
				}
			}
			return nil
		case Eq:
			if err := checkTerm(g.L); err != nil {
				return err
			}
			return checkTerm(g.R)
		case Not:
			return walk(g.F)
		case And:
			for _, h := range g.Fs {
				if err := walk(h); err != nil {
					return err
				}
			}
			return nil
		case Or:
			for _, h := range g.Fs {
				if err := walk(h); err != nil {
					return err
				}
			}
			return nil
		case Implies:
			if err := walk(g.Hyp); err != nil {
				return err
			}
			return walk(g.Concl)
		case Exists:
			for _, v := range g.Vars {
				if err := check("variable", v); err != nil {
					return err
				}
			}
			return walk(g.F)
		case Forall:
			for _, v := range g.Vars {
				if err := check("variable", v); err != nil {
					return err
				}
			}
			return walk(g.F)
		default:
			panic(fmt.Sprintf("fo: unknown formula %T", f))
		}
	}
	return walk(f)
}

func sqlExpr(f Formula) string {
	switch g := f.(type) {
	case Truth:
		if g {
			return "TRUE"
		}
		return "FALSE"
	case Atom:
		var conds []string
		for i, t := range g.A.Args {
			conds = append(conds, fmt.Sprintf("c%d = %s", i+1, sqlTerm(t)))
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s%s)", sqlIdent(g.A.Rel), where)
	case Eq:
		return fmt.Sprintf("%s = %s", sqlTerm(g.L), sqlTerm(g.R))
	case Not:
		return "NOT (" + sqlExpr(g.F) + ")"
	case And:
		return joinSQL(g.Fs, " AND ")
	case Or:
		return joinSQL(g.Fs, " OR ")
	case Implies:
		return "(NOT (" + sqlExpr(g.Hyp) + ") OR (" + sqlExpr(g.Concl) + "))"
	case Exists:
		return quantifierSQL(g.Vars, g.F, false)
	case Forall:
		return quantifierSQL(g.Vars, g.F, true)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

func quantifierSQL(vars []string, body Formula, universal bool) string {
	froms := make([]string, len(vars))
	for i, v := range vars {
		froms[i] = "adom " + varAlias(v)
	}
	inner := sqlExpr(body)
	if universal {
		inner = "NOT (" + inner + ")"
	}
	out := fmt.Sprintf("EXISTS (SELECT 1 FROM %s WHERE %s)", strings.Join(froms, ", "), inner)
	if universal {
		out = "NOT " + out
	}
	return out
}

func joinSQL(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i := range fs {
		parts[i] = "(" + sqlExpr(fs[i]) + ")"
	}
	return strings.Join(parts, sep)
}

func sqlTerm(t cq.Term) string {
	if t.IsConst {
		return "'" + strings.ReplaceAll(t.Value, "'", "''") + "'"
	}
	return varAlias(t.Value) + ".v"
}

// varAlias names the adom row bound to v. Quoted: a variable is
// user-controlled text and must not break out of identifier position.
func varAlias(v string) string { return sqlIdent("a_" + v) }

func sqlIdent(name string) string { return `"` + strings.ReplaceAll(name, `"`, `""`) + `"` }
