package fo

import (
	"fmt"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// SQL renders the sentence as a SQL boolean expression, assuming:
//
//   - each relation R of arity n is a table R(c1, ..., cn);
//   - a unary view adom(v) materializes the active domain, e.g.
//     CREATE VIEW adom AS SELECT c1 AS v FROM R UNION SELECT c2 FROM R ...;
//   - quantifiers range over adom.
//
// Variables become correlated references to adom rows. The output is
// suitable for `SELECT <expr>;` in any SQL dialect with EXISTS.
func SQL(f Formula) (sql string, err error) {
	defer containPanic(&err)
	if free := FreeVars(f); free.Len() > 0 {
		return "", fmt.Errorf("fo: SQL requires a sentence; free variables %v", free)
	}
	return sqlExpr(f), nil
}

func sqlExpr(f Formula) string {
	switch g := f.(type) {
	case Truth:
		if g {
			return "TRUE"
		}
		return "FALSE"
	case Atom:
		var conds []string
		for i, t := range g.A.Args {
			conds = append(conds, fmt.Sprintf("c%d = %s", i+1, sqlTerm(t)))
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s%s)", sqlIdent(g.A.Rel), where)
	case Eq:
		return fmt.Sprintf("%s = %s", sqlTerm(g.L), sqlTerm(g.R))
	case Not:
		return "NOT (" + sqlExpr(g.F) + ")"
	case And:
		return joinSQL(g.Fs, " AND ")
	case Or:
		return joinSQL(g.Fs, " OR ")
	case Implies:
		return "(NOT (" + sqlExpr(g.Hyp) + ") OR (" + sqlExpr(g.Concl) + "))"
	case Exists:
		return quantifierSQL(g.Vars, g.F, false)
	case Forall:
		return quantifierSQL(g.Vars, g.F, true)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

func quantifierSQL(vars []string, body Formula, universal bool) string {
	froms := make([]string, len(vars))
	for i, v := range vars {
		froms[i] = "adom " + varAlias(v)
	}
	inner := sqlExpr(body)
	if universal {
		inner = "NOT (" + inner + ")"
	}
	out := fmt.Sprintf("EXISTS (SELECT 1 FROM %s WHERE %s)", strings.Join(froms, ", "), inner)
	if universal {
		out = "NOT " + out
	}
	return out
}

func joinSQL(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i := range fs {
		parts[i] = "(" + sqlExpr(fs[i]) + ")"
	}
	return strings.Join(parts, sep)
}

func sqlTerm(t cq.Term) string {
	if t.IsConst {
		return "'" + strings.ReplaceAll(t.Value, "'", "''") + "'"
	}
	return varAlias(t.Value) + ".v"
}

func varAlias(v string) string { return "a_" + v }

func sqlIdent(name string) string { return `"` + strings.ReplaceAll(name, `"`, `""`) + `"` }
