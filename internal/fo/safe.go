package fo

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/prob"
)

// ErrUnsafe marks queries rejected by the IsSafe test. Matchable with
// errors.Is.
var ErrUnsafe = errors.New("query is not safe")

// RewriteSafe constructs a certain first-order rewriting for *safe*
// queries, following the induction of Theorem 6 over the IsSafe rules.
// Unlike RewriteAcyclic it does not need a join tree, so it also covers
// safe queries whose hypergraph is cyclic (where attack graphs are not even
// defined):
//
//	R1  single ground atom A: A is certain iff A is present and alone in
//	    its block (RewriteFact);
//	R2  variable-disjoint components: conjunction of their rewritings;
//	R3  a variable x in every key: certain(q) ⟺ ∃a certain(q[x↦a]), so
//	    ∃x φ(x) with φ the rewriting of q[x↦a] reopened at a;
//	R4  an atom F with ground key and variables left: all R-facts with that
//	    key form one block, and certain(q) ⟺ the block is nonempty, every
//	    fact in it matches F's pattern, and leaves a certain remainder —
//	    the same block shape as the Theorem 1 step, correct here without
//	    any attack-graph premise because the key is ground.
//
// It fails on unsafe queries.
func RewriteSafe(q cq.Query) (Formula, error) {
	if q.HasSelfJoin() {
		return nil, fmt.Errorf("fo: RewriteSafe requires self-join-free queries: %s", q)
	}
	if !prob.IsSafe(q) {
		return nil, fmt.Errorf("fo: %s: %w", q, ErrUnsafe)
	}
	for c := range q.Constants() {
		if len(c) >= len(markerPrefix) && c[:len(markerPrefix)] == markerPrefix {
			return nil, fmt.Errorf("fo: query constant %q collides with the marker namespace", c)
		}
	}
	fresh := 0
	var rec func(q cq.Query) (Formula, error)
	rec = func(q cq.Query) (Formula, error) {
		if q.IsEmpty() {
			return Truth(true), nil
		}
		// R1: single ground atom.
		if q.Len() == 1 && q.Vars().Len() == 0 {
			return rewriteFactFresh(q.Atoms[0], &fresh)
		}
		// R2: independent components.
		if comps := q.ConnectedComponents(); len(comps) > 1 {
			var fs []Formula
			for _, comp := range comps {
				atoms := make([]cq.Atom, len(comp))
				for i, idx := range comp {
					atoms[i] = q.Atoms[idx]
				}
				sub, err := rec(cq.Query{Atoms: atoms})
				if err != nil {
					return nil, err
				}
				fs = append(fs, sub)
			}
			return NewAnd(fs...), nil
		}
		// R3: a common key variable.
		if x, ok := safeCommonKeyVar(q); ok {
			fresh++
			marker := markerPrefix + "s" + strconv.Itoa(fresh)
			sub, err := rec(q.Substitute(cq.Valuation{x: marker}))
			if err != nil {
				return nil, err
			}
			fresh++
			v := fmt.Sprintf("s%d", fresh)
			reopened := reopenMarkers(sub, map[string]string{marker: v})
			return NewExists([]string{v}, reopened), nil
		}
		// R4: an atom whose key is ground but with variables remaining.
		for idx, a := range q.Atoms {
			if a.KeyVars().Len() == 0 && a.Vars().Len() > 0 {
				return rewriteGroundKeyStep(q, idx, &fresh, rec)
			}
		}
		return nil, fmt.Errorf("fo: no IsSafe rule applies to %s (query not safe?)", q)
	}
	return rec(q)
}

func safeCommonKeyVar(q cq.Query) (string, bool) {
	if q.Len() == 0 {
		return "", false
	}
	common := q.Atoms[0].KeyVars()
	for _, a := range q.Atoms[1:] {
		common = common.Intersect(a.KeyVars())
	}
	if common.Len() == 0 {
		return "", false
	}
	return common.Sorted()[0], true
}

// rewriteGroundKeyStep emits the block formula for an atom F whose key
// terms are all constants:
//
//	∃ū R(c̄, ū) ∧ ∀ū ( R(c̄, ū) → pattern(ū) ∧ φ_rest[ȳ ↦ ū] )
func rewriteGroundKeyStep(q cq.Query, idx int, fresh *int, rec func(cq.Query) (Formula, error)) (Formula, error) {
	F := q.Atoms[idx]
	rest := q.Without(idx)
	n, k := F.Arity(), F.KeyLen
	args := make([]cq.Term, n)
	var vars []string
	var pattern []Formula
	def := make(map[string]string)
	for i := 0; i < n; i++ {
		if i < k {
			// Ground key position.
			args[i] = F.Args[i]
			continue
		}
		*fresh++
		name := fmt.Sprintf("u%d", *fresh)
		vars = append(vars, name)
		args[i] = cq.Var(name)
		t := F.Args[i]
		if t.IsConst {
			pattern = append(pattern, Eq{L: cq.Var(name), R: t})
			continue
		}
		if prev, ok := def[t.Value]; ok {
			pattern = append(pattern, Eq{L: cq.Var(name), R: cq.Var(prev)})
		} else {
			def[t.Value] = name
		}
	}
	guard := Atom{A: cq.Atom{Rel: F.Rel, KeyLen: k, Args: args}}
	// Recurse with F's variables frozen to markers, then reopen them as the
	// universally quantified fresh variables.
	markers := make(cq.Valuation, len(def))
	reopen := make(map[string]string, len(def))
	for v, name := range def {
		m := markerPrefix + "g" + name
		markers[v] = m
		reopen[m] = name
	}
	sub, err := rec(rest.Substitute(markers))
	if err != nil {
		return nil, err
	}
	body := NewAnd(append(append([]Formula{}, pattern...), reopenMarkers(sub, reopen))...)
	return NewAnd(
		NewExists(vars, guard),
		NewForall(vars, Implies{Hyp: guard, Concl: body}),
	), nil
}
