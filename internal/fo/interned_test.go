package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

// TestInternedCompiledParity is the three-way differential for the fo data
// plane: the interned tree, the string closure tree, and the interpreter
// must decide every rewriting identically over random databases.
func TestInternedCompiledParity(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.MustParseQuery("R(x | y, z), S(y, z | w)"),
		cq.MustParseQuery("R(x, x | y)"),
		cq.MustParseQuery("R(x | 'A'), S(x | y)"), // constant probes
	}
	for _, q := range queries {
		phi, err := RewriteAcyclic(q)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := Compile(phi)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 25; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 4, Domain: 3}, seed)
			interp, err := Eval(phi, d)
			if err != nil {
				t.Fatal(err)
			}
			indexed, err := compiled.EvalIndexed(d)
			if err != nil {
				t.Fatal(err)
			}
			interned, err := compiled.evalInterned(d)
			if err != nil {
				t.Fatal(err)
			}
			if interned != indexed || interned != interp {
				t.Fatalf("%s seed %d: interned=%v indexed=%v interpreted=%v\nφ = %s\ndb:\n%s",
					q, seed, interned, indexed, interp, phi, d)
			}
		}
	}
}

// TestInternedCompiledEdgeCases pins the symbol-resolution corners:
// constants absent from the database (pseudo-ids), constants colliding with
// relation names (interned but outside the active domain), and empty
// databases.
func TestInternedCompiledEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		phi  Formula
		d    *db.DB
	}{
		{
			name: "constant absent from db",
			phi: NewAnd(
				Exists{Vars: []string{"w"}, F: Atom{A: cq.MustParseQuery("R('missing' | w)").Atoms[0]}},
				Not{F: Eq{L: cq.Const("missing"), R: cq.Const("alsogone")}},
			),
			d: db.MustParse("R(a | b)"),
		},
		{
			name: "constant equals relation name",
			phi:  Exists{Vars: []string{"x"}, F: Eq{L: cq.Var("x"), R: cq.Const("R")}},
			d:    db.MustParse("R(a | b)"),
		},
		{
			name: "empty database",
			phi:  Forall{Vars: []string{"x"}, F: Eq{L: cq.Var("x"), R: cq.Var("x")}},
			d:    db.New(),
		},
		{
			name: "two absent constants stay distinct",
			phi:  Eq{L: cq.Const("ghost1"), R: cq.Const("ghost2")},
			d:    db.MustParse("R(a | b)"),
		},
		{
			name: "same absent constant is self-equal",
			phi:  Eq{L: cq.Const("ghost"), R: cq.Const("ghost")},
			d:    db.MustParse("R(a | b)"),
		},
		{
			name: "arity mismatch probes false",
			phi:  Atom{A: cq.MustParseQuery("R('a', 'b' | 'c')").Atoms[0]},
			d:    db.MustParse("R(a | b)"),
		},
	}
	for _, tc := range cases {
		compiled, err := Compile(tc.phi)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		indexed, err := compiled.EvalIndexed(tc.d)
		if err != nil {
			t.Fatalf("%s: indexed: %v", tc.name, err)
		}
		interned, err := compiled.evalInterned(tc.d)
		if err != nil {
			t.Fatalf("%s: interned: %v", tc.name, err)
		}
		if interned != indexed {
			t.Fatalf("%s: interned=%v indexed=%v", tc.name, interned, indexed)
		}
	}
}

// TestInternedKnob checks the package knob reroutes Compiled.Eval.
func TestInternedKnob(t *testing.T) {
	if !InternedEnabled() {
		t.Fatal("interned plane must default to enabled")
	}
	phi, err := RewriteAcyclic(cq.MustParseQuery("R(x | y)"))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(phi)
	if err != nil {
		t.Fatal(err)
	}
	d := db.MustParse("R(a | b), R(a | c), S(b | d)")
	on, err := compiled.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	SetInterned(false)
	off, errOff := compiled.Eval(d)
	SetInterned(true)
	if errOff != nil {
		t.Fatal(errOff)
	}
	if on != off {
		t.Fatalf("knob changed the verdict: on=%v off=%v", on, off)
	}
}
