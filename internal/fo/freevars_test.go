package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func TestRewriteAcyclicFreeConference(t *testing.T) {
	// Which conferences are certainly rank A?
	q := cq.MustParseQuery("R(x | 'A')")
	phi, err := RewriteAcyclicFree(q, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := FreeVars(phi); !got.Equal(cq.NewVarSet("x")) {
		t.Fatalf("free vars of rewriting = %v", got)
	}
	d := gen.ConferenceDB()
	cases := map[string]bool{"PODS": true, "KDD": false, "ICDT": false}
	for conf, want := range cases {
		got, err := EvalWith(phi, d, cq.Valuation{"x": conf})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("certain rank-A for %s = %v, want %v", conf, got, want)
		}
	}
}

func TestRewriteAcyclicFreeAgainstBruteForce(t *testing.T) {
	cases := []struct {
		q    cq.Query
		free []string
	}{
		{cq.MustParseQuery("R(x | y), S(y | z)"), []string{"x"}},
		{cq.MustParseQuery("R(x | y), S(y | z)"), []string{"x", "z"}},
		{cq.MustParseQuery("R(x | y)"), []string{"y"}},
	}
	for _, c := range cases {
		phi, err := RewriteAcyclicFree(c.q, c.free)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		for seed := int64(0); seed < 15; seed++ {
			d := gen.RandomDB(c.q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			// Check every active-domain tuple.
			dom := d.ActiveDomain()
			var rec func(i int, env cq.Valuation)
			rec = func(i int, env cq.Valuation) {
				if i == len(c.free) {
					got, err := EvalWith(phi, d, env)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteCertain(c.q.Substitute(env), d)
					if got != want {
						t.Errorf("%s %v: rewriting=%v brute=%v", c.q, env, got, want)
					}
					return
				}
				for _, a := range dom {
					rec(i+1, env.Bind(c.free[i], a))
				}
			}
			rec(0, cq.Valuation{})
		}
	}
}

func TestRewriteAcyclicFreeErrors(t *testing.T) {
	q := cq.MustParseQuery("R(x | y)")
	if _, err := RewriteAcyclicFree(q, []string{"zzz"}); err == nil {
		t.Error("unknown free variable must be rejected")
	}
	if _, err := RewriteAcyclicFree(q, []string{"x", "x"}); err == nil {
		t.Error("duplicate free variable must be rejected")
	}
	if _, err := RewriteAcyclicFree(cq.Q1(), []string{"u"}); err == nil {
		t.Error("cyclic attack graph (after freezing) must be rejected")
	}
	collide := cq.NewQuery(cq.NewAtom("R", 1, cq.Var("x"), cq.Const(markerPrefix+"0")))
	if _, err := RewriteAcyclicFree(collide, []string{"x"}); err == nil {
		t.Error("marker collision must be rejected")
	}
}

func TestFreezingCanHelp(t *testing.T) {
	// C(2) has a cyclic attack graph, but freezing x1 breaks the cycle:
	// certain answers for x1 are FO-computable even though the Boolean
	// problem is not FO.
	q := cq.Ck(2)
	if !CanRewriteFree(q, []string{"x1"}) {
		t.Fatal("freezing x1 should break C(2)'s attack cycle")
	}
	phi, err := RewriteAcyclicFree(q, []string{"x1"})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
		for _, a := range d.ActiveDomain() {
			got, err := EvalWith(phi, d, cq.Valuation{"x1": a})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteCertain(q.Substitute(cq.Valuation{"x1": a}), d)
			if got != want {
				t.Errorf("seed %d x1=%s: rewriting=%v brute=%v", seed, a, got, want)
			}
		}
	}
}

func TestEvalWithErrors(t *testing.T) {
	phi := Eq{L: cq.Var("x"), R: cq.Const("a")}
	if _, err := EvalWith(phi, db.New(), cq.Valuation{}); err == nil {
		t.Error("unbound free variable must be rejected")
	}
	got, err := EvalWith(phi, db.New(), cq.Valuation{"x": "a"})
	if err != nil || !got {
		t.Errorf("EvalWith = %v, %v", got, err)
	}
}

func TestCertainAnswersByRewriting(t *testing.T) {
	q := cq.MustParseQuery("R(x | 'A')")
	d := gen.ConferenceDB()
	candidates := []cq.Valuation{{"x": "PODS"}, {"x": "KDD"}}
	got, err := CertainAnswersByRewriting(q, []string{"x"}, d, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "PODS" {
		t.Errorf("answers = %v", got)
	}
}
