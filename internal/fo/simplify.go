package fo

import "fmt"

// Simplify normalizes a formula without changing its meaning: double
// negations collapse, negations push through conjunction/disjunction/
// quantifiers (negation normal form for the connective skeleton),
// implications unfold to ¬H ∨ C, boolean constants fold, and nested
// conjunctions/disjunctions flatten. Useful before rendering SQL, where
// NOT(NOT EXISTS(...)) chains from the rewriting otherwise pile up.
func Simplify(f Formula) Formula {
	return simplify(f, false)
}

// simplify rewrites f under an optional pending negation.
func simplify(f Formula, negate bool) Formula {
	switch g := f.(type) {
	case Truth:
		return Truth(bool(g) != negate)
	case Atom:
		if negate {
			return Not{F: g}
		}
		return g
	case Eq:
		if negate {
			return Not{F: g}
		}
		return g
	case Not:
		return simplify(g.F, !negate)
	case And:
		subs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			subs[i] = simplify(sub, negate)
		}
		if negate {
			return NewOr(subs...)
		}
		return NewAnd(subs...)
	case Or:
		subs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			subs[i] = simplify(sub, negate)
		}
		if negate {
			return NewAnd(subs...)
		}
		return NewOr(subs...)
	case Implies:
		// H → C ≡ ¬H ∨ C; negated: H ∧ ¬C.
		if negate {
			return NewAnd(simplify(g.Hyp, false), simplify(g.Concl, true))
		}
		return NewOr(simplify(g.Hyp, true), simplify(g.Concl, false))
	case Exists:
		sub := simplify(g.F, negate)
		if negate {
			return NewForall(g.Vars, sub)
		}
		return NewExists(g.Vars, sub)
	case Forall:
		sub := simplify(g.F, negate)
		if negate {
			return NewExists(g.Vars, sub)
		}
		return NewForall(g.Vars, sub)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}
