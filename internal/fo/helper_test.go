package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
)

// bruteCertain is a local brute-force certainty oracle for the rewriting
// tests (the solver package now depends on fo, so tests here cannot import
// it back).
func bruteCertain(q cq.Query, d *db.DB) bool {
	certain := true
	d.EachRepair(func(r []db.Fact) bool {
		if !engine.EvalRepair(q, r) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// mustDB parses a database literal for tests.
func mustDB(t *testing.T, s string) *db.DB {
	t.Helper()
	d, err := db.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
