package fo

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/db"
)

// internedOn selects the interned evaluation plane for compiled formulas.
// On by default; SetInterned(false) falls back to the string closure tree.
// Both trees decide the same sentences — formula truth is insensitive to
// the quantification order difference between the two domain layouts.
var internedOn atomic.Bool

func init() { internedOn.Store(true) }

// SetInterned selects (true, the default) or deselects the interned
// evaluation plane for compiled formulas.
func SetInterned(on bool) { internedOn.Store(on) }

// InternedEnabled reports whether the interned plane is selected.
func InternedEnabled() bool { return internedOn.Load() }

// inode is one node of the interned closure tree: it reads and writes only
// the pooled runtime, so a warm evaluation allocates nothing.
type inode func(rt *irt) bool

// iAtomRef names a relation an atom probes; it is resolved to columnar
// storage once per evaluation (nil when absent or arity-mismatched, making
// the atom uniformly false — exactly d.Has on a fact that cannot exist).
type iAtomRef struct {
	rel   string
	arity int
}

// irt is the pooled interned runtime: the slot environment, the resolved
// constant ids, the resolved relations, the quantification domain, and an
// argument scratch buffer.
//
// Constants absent from the database intern table resolve to pseudo-ids
// just past the table (Len()+ordinal): distinct from every real id and
// from each other, so equality and probes behave exactly like the distinct
// fresh strings they stand for.
type irt struct {
	env    []uint32
	args   []uint32
	consts []uint32
	rels   []*db.IRel
	dom    []uint32
	domBuf []uint32
}

func (rt *irt) resolve(ref iref) uint32 {
	if ref.constIdx >= 0 {
		return rt.consts[ref.constIdx]
	}
	return rt.env[ref.slot]
}

var irtPool = sync.Pool{New: func() any { return new(irt) }}

func growIDs(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// evalInterned evaluates the compiled sentence over the database's interned
// view: ids in the environment, columnar HasTuple probes, domain as an id
// slice. Zero allocations on a warm runtime.
func (c *Compiled) evalInterned(d *db.DB) (ok bool, err error) {
	defer containPanic(&err)
	if len(c.freeSlot) > 0 {
		return false, fmt.Errorf("fo: compiled formula has free variables; use EvalWith")
	}
	in := d.Interned()
	rt := irtPool.Get().(*irt)
	defer irtPool.Put(rt)
	rt.env = growIDs(rt.env, c.numSlots)
	rt.args = growIDs(rt.args, c.maxArity)

	rt.consts = rt.consts[:0]
	extendDomain := false
	for i, v := range c.consts {
		id, found := in.Syms.Lookup(v)
		if !found {
			id = uint32(in.Syms.Len() + i) // pseudo-id: unique, outside the table
		}
		rt.consts = append(rt.consts, id)
		if !in.IsDomainSym(id) {
			extendDomain = true
		}
	}

	rt.rels = rt.rels[:0]
	for _, ar := range c.iatoms {
		r := in.Rel(ar.rel)
		if r != nil && r.Arity != ar.arity {
			r = nil
		}
		rt.rels = append(rt.rels, r)
	}

	// Quantifiers range over the active domain extended by the formula's
	// constants — the id-level image of the string path's domain set. The
	// shared domain slice is used directly unless constants extend it.
	rt.dom = in.Domain()
	if extendDomain {
		rt.domBuf = append(rt.domBuf[:0], in.Domain()...)
		for _, id := range rt.consts {
			if !in.IsDomainSym(id) {
				rt.domBuf = append(rt.domBuf, id)
			}
		}
		rt.dom = rt.domBuf
	}
	return c.ieval(rt), nil
}
