package fo

import (
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Eval evaluates a sentence (no free variables) on the database, with
// quantifiers ranging over the active domain of d extended by the constants
// of the formula. All rewritings this package produces are guarded, so
// active-domain semantics coincides with natural semantics. Panics on
// malformed hand-built formulas are converted into errors.
func Eval(f Formula, d *db.DB) (ok bool, err error) {
	defer containPanic(&err)
	if free := FreeVars(f); free.Len() > 0 {
		return false, fmt.Errorf("fo: Eval requires a sentence; free variables %v", free)
	}
	domain := d.ActiveDomain()
	seen := make(map[string]bool, len(domain))
	for _, c := range domain {
		seen[c] = true
	}
	collectConstants(f, func(c string) {
		if !seen[c] {
			seen[c] = true
			domain = append(domain, c)
		}
	})
	return eval(f, d, domain, cq.Valuation{}), nil
}

func collectConstants(f Formula, add func(string)) {
	switch g := f.(type) {
	case Truth:
	case Atom:
		for _, t := range g.A.Args {
			if t.IsConst {
				add(t.Value)
			}
		}
	case Eq:
		for _, t := range []cq.Term{g.L, g.R} {
			if t.IsConst {
				add(t.Value)
			}
		}
	case Not:
		collectConstants(g.F, add)
	case And:
		for _, sub := range g.Fs {
			collectConstants(sub, add)
		}
	case Or:
		for _, sub := range g.Fs {
			collectConstants(sub, add)
		}
	case Implies:
		collectConstants(g.Hyp, add)
		collectConstants(g.Concl, add)
	case Exists:
		collectConstants(g.F, add)
	case Forall:
		collectConstants(g.F, add)
	}
}

func eval(f Formula, d *db.DB, domain []string, env cq.Valuation) bool {
	switch g := f.(type) {
	case Truth:
		return bool(g)
	case Atom:
		ground := g.A.Substitute(env)
		fact, ok := db.FactFromAtom(ground)
		if !ok {
			panic(fmt.Sprintf("fo: unbound variable in atom %s under %v", g.A, env))
		}
		return d.Has(fact)
	case Eq:
		return termValue(g.L, env) == termValue(g.R, env)
	case Not:
		return !eval(g.F, d, domain, env)
	case And:
		for _, sub := range g.Fs {
			if !eval(sub, d, domain, env) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if eval(sub, d, domain, env) {
				return true
			}
		}
		return false
	case Implies:
		return !eval(g.Hyp, d, domain, env) || eval(g.Concl, d, domain, env)
	case Exists:
		return quantify(g.Vars, 0, env, domain, func(e cq.Valuation) bool {
			return eval(g.F, d, domain, e)
		}, true)
	case Forall:
		return quantify(g.Vars, 0, env, domain, func(e cq.Valuation) bool {
			return eval(g.F, d, domain, e)
		}, false)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// quantify recursively binds vars[i:] over the domain. existential selects
// ∃ (any witness) vs ∀ (all witnesses).
func quantify(vars []string, i int, env cq.Valuation, domain []string, body func(cq.Valuation) bool, existential bool) bool {
	if i == len(vars) {
		return body(env)
	}
	for _, c := range domain {
		next := env.Bind(vars[i], c)
		ok := quantify(vars, i+1, next, domain, body, existential)
		if existential && ok {
			return true
		}
		if !existential && !ok {
			return false
		}
	}
	return !existential
}

func termValue(t cq.Term, env cq.Valuation) string {
	if t.IsConst {
		return t.Value
	}
	v, ok := env[t.Value]
	if !ok {
		panic(fmt.Sprintf("fo: unbound variable %s", t.Value))
	}
	return v
}
