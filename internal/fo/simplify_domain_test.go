package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Simplify is only evaluation-preserving for unguarded quantifiers when the
// database's active domain covers the formula's constants: Eval quantifies
// over adom(d) ∪ consts(φ), so erasing a tautological subformula that holds
// the sole occurrence of a constant shrinks the domain. These pinned
// formulas (minimized from testing/quick counterexamples) flip their value
// on U(a), U(b) — where 'c' lives only in the erased subformula — and must
// agree once the database itself supplies 'c'.
func TestSimplifyConstantDropKeepsDomainStable(t *testing.T) {
	uc := Atom{A: cq.NewAtom("U", 1, cq.Const("c"))}
	uq := Atom{A: cq.NewAtom("U", 1, cq.Var("q"))}
	cases := []Formula{
		// ((U('c') → ⊤) ∨ ¬⊥) ∧ ¬(∀q ('a' = 'b' ∨ U(q)))
		NewAnd(
			NewOr(Implies{Hyp: uc, Concl: Truth(true)}, Not{F: Truth(false)}),
			Not{F: Forall{Vars: []string{"q"}, F: NewOr(Eq{L: cq.Const("a"), R: cq.Const("b")}, uq)}},
		),
		// (∀q (¬'a' = 'a' ∨ U(q))) ∧ (U('c') → ⊤)
		NewAnd(
			Forall{Vars: []string{"q"}, F: NewOr(Not{F: Eq{L: cq.Const("a"), R: cq.Const("a")}}, uq)},
			Implies{Hyp: uc, Concl: Truth(true)},
		),
	}
	d := db.MustParse("U(a), U(b), V(c)")
	for _, phi := range cases {
		want, err := Eval(phi, d)
		if err != nil {
			t.Fatalf("Eval(%s): %v", phi, err)
		}
		simp := Simplify(phi)
		got, err := Eval(simp, d)
		if err != nil {
			t.Fatalf("Eval(Simplify(%s) = %s): %v", phi, simp, err)
		}
		if got != want {
			t.Errorf("%s (=%v) simplified to %s (=%v)", phi, want, simp, got)
		}
	}
}
