package fo

import (
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func TestSimplifyShapes(t *testing.T) {
	a := Atom{A: cq.NewAtom("R", 1, cq.Const("x"))}
	cases := []struct {
		in   Formula
		want string
	}{
		{Not{F: Not{F: a}}, a.String()},
		{Not{F: Truth(true)}, "⊥"},
		{Not{F: NewAnd(a, Truth(true))}, Not{F: a}.String()},
		{Implies{Hyp: Truth(true), Concl: a}, a.String()},
		{Implies{Hyp: a, Concl: Truth(false)}, Not{F: a}.String()},
		{Not{F: Exists{Vars: []string{"v"}, F: Not{F: Truth(false)}}}, "∀v ⊥"},
		{NewAnd(a, NewAnd(a, a)), "R('x') ∧ R('x') ∧ R('x')"},
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// Property: Simplify preserves evaluation on the rewritings of the FO
// catalog and on random nested formulas.
func TestQuickSimplifyPreservesEvaluation(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	phi, err := RewriteAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
		want, err := Eval(phi, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eval(Simplify(phi), d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: simplified rewriting disagrees", seed)
		}
	}

	// Random formula generator over one unary relation. The generator emits
	// unguarded quantifiers, and Eval ranges them over the active domain of
	// the database extended by the formula's constants — so the database
	// must already contain every constant the generator can emit ('a', 'b',
	// 'c'). Otherwise Simplify erasing a tautological subformula such as
	// U('c') → ⊤ shrinks the domain and legitimately changes the value of an
	// unguarded quantifier (see TestSimplifyConstantDropKeepsDomainStable).
	d := db.MustParse("U(a), U(b), V(c)")
	var build func(r *uint32, depth int) Formula
	next := func(r *uint32, n int) int {
		*r = *r*1664525 + 1013904223
		return int(*r>>16) % n
	}
	build = func(r *uint32, depth int) Formula {
		if depth == 0 {
			switch next(r, 3) {
			case 0:
				return Truth(next(r, 2) == 0)
			case 1:
				return Atom{A: cq.NewAtom("U", 1, cq.Const([]string{"a", "b", "c"}[next(r, 3)]))}
			default:
				return Eq{L: cq.Const("a"), R: cq.Const([]string{"a", "b"}[next(r, 2)])}
			}
		}
		switch next(r, 5) {
		case 0:
			return Not{F: build(r, depth-1)}
		case 1:
			return NewAnd(build(r, depth-1), build(r, depth-1))
		case 2:
			return NewOr(build(r, depth-1), build(r, depth-1))
		case 3:
			return Implies{Hyp: build(r, depth-1), Concl: build(r, depth-1)}
		default:
			v := []string{"p", "q"}[next(r, 2)]
			body := NewOr(build(r, depth-1), Atom{A: cq.NewAtom("U", 1, cq.Var(v))})
			if next(r, 2) == 0 {
				return Exists{Vars: []string{v}, F: body}
			}
			return Forall{Vars: []string{v}, F: body}
		}
	}
	f := func(seed uint32) bool {
		r := seed
		phi := build(&r, 3)
		want, err := Eval(phi, d)
		if err != nil {
			return true // free-variable shapes can slip through; skip
		}
		simp := Simplify(phi)
		got, err := Eval(simp, d)
		if err != nil {
			t.Logf("simplified formula became unevaluable: %s -> %s: %v", phi, simp, err)
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
