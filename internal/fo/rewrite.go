package fo

import (
	"errors"
	"fmt"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/jointree"
)

// ErrNotRewritable marks queries without a certain first-order rewriting
// (cyclic attack graph; Theorem 1). Matchable with errors.Is.
var ErrNotRewritable = errors.New("no certain first-order rewriting exists")

// RewriteAcyclic constructs a certain first-order rewriting of q: a
// sentence φ such that for every uncertain database db,
// db ∈ CERTAINTY(q) ⟺ db ⊨ φ. It exists iff the attack graph of q is
// acyclic (Theorem 1); the construction eliminates an unattacked atom per
// step:
//
//	φ_q = ∃w̄ ( key-pattern(w̄) ∧ ∃ū R(w̄, ū)
//	          ∧ ∀ū ( R(w̄, ū) → nonkey-pattern(w̄, ū) ∧ φ_rest ) )
//
// reading: some block of R whose key matches the atom's key pattern is
// such that every fact in the block matches the full pattern and makes the
// instantiated remainder certain.
func RewriteAcyclic(q cq.Query) (Formula, error) {
	fresh := 0
	// bound tracks the fresh variables introduced by enclosing quantifiers;
	// when a subquery mentions one, the rewriting must equate rather than
	// re-quantify it (it carries a join value from the parent atom).
	bound := make(map[string]bool)
	var rec func(q cq.Query) (Formula, error)
	rec = func(q cq.Query) (Formula, error) {
		if q.IsEmpty() {
			return Truth(true), nil
		}
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return nil, err
		}
		un := g.Unattacked()
		if len(un) == 0 {
			return nil, fmt.Errorf("fo: attack graph of %s is cyclic: %w", q, ErrNotRewritable)
		}
		F := q.Atoms[un[0]]
		rest := q.Without(un[0])

		n, k := F.Arity(), F.KeyLen
		keyVars := make([]string, k)
		nonkeyVars := make([]string, n-k)
		atomArgs := make([]cq.Term, n)
		for i := 0; i < n; i++ {
			fresh++
			name := fmt.Sprintf("w%d", fresh)
			if i < k {
				keyVars[i] = name
			} else {
				nonkeyVars[i-k] = name
			}
			atomArgs[i] = cq.Var(name)
		}
		guard := Atom{A: cq.Atom{Rel: F.Rel, KeyLen: k, Args: atomArgs}}

		var keyConstraints, nonkeyConstraints []Formula
		def := make(map[string]string) // query variable → fresh variable
		for i, t := range F.Args {
			sym := atomArgs[i]
			var sink *[]Formula
			if i < k {
				sink = &keyConstraints
			} else {
				sink = &nonkeyConstraints
			}
			if t.IsConst {
				*sink = append(*sink, Eq{L: sym, R: t})
				continue
			}
			if bound[t.Value] {
				// Outer-bound variable: equate with the enclosing binding.
				*sink = append(*sink, Eq{L: sym, R: t})
				continue
			}
			if prev, ok := def[t.Value]; ok {
				*sink = append(*sink, Eq{L: sym, R: cq.Var(prev)})
			} else {
				def[t.Value] = sym.Value
			}
		}

		for _, v := range def {
			bound[v] = true
		}
		sub, err := rec(rest.Rename(def))
		if err != nil {
			return nil, err
		}
		inner := Implies{
			Hyp:   guard,
			Concl: NewAnd(append(append([]Formula{}, nonkeyConstraints...), sub)...),
		}
		body := NewAnd(append(append([]Formula{}, keyConstraints...),
			NewExists(nonkeyVars, guard),
			NewForall(nonkeyVars, inner))...)
		return NewExists(keyVars, body), nil
	}
	return rec(q)
}

// RewriteFact returns the certain rewriting of a single ground fact A:
// A is certain iff A is present and is alone in its block,
//
//	A ∧ ∀ū ( R(key(A), ū) → ū = nonkey(A) )
//
// This is rule R1 of the Theorem 6 construction; it agrees with
// RewriteAcyclic on ground atoms and is exposed for the probabilistic
// bridge.
func RewriteFact(a cq.Atom) (Formula, error) {
	fresh := 0
	return rewriteFactFresh(a, &fresh)
}

// rewriteFactFresh is RewriteFact drawing quantified-variable names from a
// shared counter, so that formulas embedded under other binders (the
// Theorem 6 recursion) cannot capture enclosing variables.
func rewriteFactFresh(a cq.Atom, fresh *int) (Formula, error) {
	if !a.IsGround() {
		return nil, fmt.Errorf("fo: RewriteFact requires a ground atom, got %s", a)
	}
	n, k := a.Arity(), a.KeyLen
	args := make([]cq.Term, n)
	vars := make([]string, 0, n-k)
	var eqs []Formula
	for i := 0; i < n; i++ {
		if i < k {
			args[i] = a.Args[i]
			continue
		}
		*fresh++
		v := fmt.Sprintf("f%d", *fresh)
		vars = append(vars, v)
		args[i] = cq.Var(v)
		eqs = append(eqs, Eq{L: cq.Var(v), R: a.Args[i]})
	}
	guard := Atom{A: cq.Atom{Rel: a.Rel, KeyLen: k, Args: args}}
	return NewAnd(Atom{A: a}, NewForall(vars, Implies{Hyp: guard, Concl: NewAnd(eqs...)})), nil
}
