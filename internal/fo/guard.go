package fo

import "github.com/cqa-go/certainty/internal/govern"

// containPanic converts a panic escaping a public entry point of this
// package into an error. The internal evaluator and compiler panic on
// malformed formulas (unknown node types, unbound variables in guarded
// positions) — invariant violations for formulas this package produces,
// but reachable through hand-built ASTs. A long-running server must see an
// error, not a crash.
//
// Usage: give the entry point a named error return and
// `defer containPanic(&err)` as its first statement.
func containPanic(err *error) {
	if r := recover(); r != nil {
		*err = &govern.PanicError{Value: r}
	}
}
