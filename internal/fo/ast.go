// Package fo provides first-order formulas over the database vocabulary:
// an AST, an active-domain evaluator, constructors for certain first-order
// rewritings (the Theorem 1 unattacked-atom rewriting and the Theorem 6
// safe-query rewriting), and SQL rendering.
package fo

import (
	"fmt"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// Formula is a first-order formula. Implementations are immutable.
type Formula interface {
	fmt.Stringer
	// rename applies a variable substitution (variables to terms).
	rename(m map[string]cq.Term) Formula
}

// Truth is a boolean constant.
type Truth bool

// Atom asserts membership of a tuple in a relation.
type Atom struct{ A cq.Atom }

// Eq asserts equality of two terms.
type Eq struct{ L, R cq.Term }

// Not negates a formula.
type Not struct{ F Formula }

// And is conjunction; the empty conjunction is true.
type And struct{ Fs []Formula }

// Or is disjunction; the empty disjunction is false.
type Or struct{ Fs []Formula }

// Implies is material implication.
type Implies struct{ Hyp, Concl Formula }

// Exists existentially quantifies variables (over the active domain).
type Exists struct {
	Vars []string
	F    Formula
}

// Forall universally quantifies variables (over the active domain).
type Forall struct {
	Vars []string
	F    Formula
}

// NewAnd flattens nested conjunctions and drops trivial conjuncts.
func NewAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case Truth:
			if !bool(g) {
				return Truth(false)
			}
		case And:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return Truth(true)
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// NewOr flattens nested disjunctions and drops trivial disjuncts.
func NewOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case Truth:
			if bool(g) {
				return Truth(true)
			}
		case Or:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return Truth(false)
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

// NewExists drops empty quantifier prefixes.
func NewExists(vars []string, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return Exists{Vars: vars, F: f}
}

// NewForall drops empty quantifier prefixes.
func NewForall(vars []string, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return Forall{Vars: vars, F: f}
}

func (t Truth) String() string {
	if t {
		return "⊤"
	}
	return "⊥"
}
func (a Atom) String() string { return a.A.String() }
func (e Eq) String() string   { return e.L.String() + " = " + e.R.String() }
func (n Not) String() string  { return "¬" + paren(n.F) }
func (a And) String() string  { return joinFormulas(a.Fs, " ∧ ") }
func (o Or) String() string   { return joinFormulas(o.Fs, " ∨ ") }
func (i Implies) String() string {
	return paren(i.Hyp) + " → " + paren(i.Concl)
}
func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " " + paren(e.F)
}
func (f Forall) String() string {
	return "∀" + strings.Join(f.Vars, ",") + " " + paren(f.F)
}

func paren(f Formula) string {
	switch f.(type) {
	case Truth, Atom, Eq, Not:
		return f.String()
	}
	return "(" + f.String() + ")"
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(fs[i])
		_ = f
	}
	return strings.Join(parts, sep)
}

func renameAll(fs []Formula, m map[string]cq.Term) []Formula {
	out := make([]Formula, len(fs))
	for i, f := range fs {
		out[i] = f.rename(m)
	}
	return out
}

func (t Truth) rename(map[string]cq.Term) Formula { return t }
func (a Atom) rename(m map[string]cq.Term) Formula {
	args := make([]cq.Term, len(a.A.Args))
	for i, arg := range a.A.Args {
		args[i] = renameTerm(arg, m)
	}
	return Atom{A: cq.Atom{Rel: a.A.Rel, KeyLen: a.A.KeyLen, Args: args}}
}
func (e Eq) rename(m map[string]cq.Term) Formula {
	return Eq{L: renameTerm(e.L, m), R: renameTerm(e.R, m)}
}
func (n Not) rename(m map[string]cq.Term) Formula { return Not{F: n.F.rename(m)} }
func (a And) rename(m map[string]cq.Term) Formula { return And{Fs: renameAll(a.Fs, m)} }
func (o Or) rename(m map[string]cq.Term) Formula  { return Or{Fs: renameAll(o.Fs, m)} }
func (i Implies) rename(m map[string]cq.Term) Formula {
	return Implies{Hyp: i.Hyp.rename(m), Concl: i.Concl.rename(m)}
}
func (e Exists) rename(m map[string]cq.Term) Formula {
	return Exists{Vars: e.Vars, F: e.F.rename(shadow(m, e.Vars))}
}
func (f Forall) rename(m map[string]cq.Term) Formula {
	return Forall{Vars: f.Vars, F: f.F.rename(shadow(m, f.Vars))}
}

func renameTerm(t cq.Term, m map[string]cq.Term) cq.Term {
	if t.IsVar() {
		if r, ok := m[t.Value]; ok {
			return r
		}
	}
	return t
}

// shadow removes bound variables from a substitution.
func shadow(m map[string]cq.Term, bound []string) map[string]cq.Term {
	needs := false
	for _, v := range bound {
		if _, ok := m[v]; ok {
			needs = true
			break
		}
	}
	if !needs {
		return m
	}
	out := make(map[string]cq.Term, len(m))
	for k, v := range m {
		out[k] = v
	}
	for _, v := range bound {
		delete(out, v)
	}
	return out
}

// Rename applies a variable-to-term substitution, respecting binders.
func Rename(f Formula, m map[string]cq.Term) Formula { return f.rename(m) }

// FreeVars returns the free variables of the formula.
func FreeVars(f Formula) cq.VarSet {
	out := make(cq.VarSet)
	var walk func(f Formula, bound cq.VarSet)
	walk = func(f Formula, bound cq.VarSet) {
		switch g := f.(type) {
		case Truth:
		case Atom:
			for _, t := range g.A.Args {
				if t.IsVar() && !bound.Has(t.Value) {
					out.Add(t.Value)
				}
			}
		case Eq:
			for _, t := range []cq.Term{g.L, g.R} {
				if t.IsVar() && !bound.Has(t.Value) {
					out.Add(t.Value)
				}
			}
		case Not:
			walk(g.F, bound)
		case And:
			for _, sub := range g.Fs {
				walk(sub, bound)
			}
		case Or:
			for _, sub := range g.Fs {
				walk(sub, bound)
			}
		case Implies:
			walk(g.Hyp, bound)
			walk(g.Concl, bound)
		case Exists:
			b := bound.Clone()
			for _, v := range g.Vars {
				b.Add(v)
			}
			walk(g.F, b)
		case Forall:
			b := bound.Clone()
			for _, v := range g.Vars {
				b.Add(v)
			}
			walk(g.F, b)
		default:
			panic(fmt.Sprintf("fo: unknown formula %T", f))
		}
	}
	walk(f, make(cq.VarSet))
	return out
}

// Size returns the number of AST nodes in the formula, a proxy for
// rewriting complexity.
func Size(f Formula) int {
	switch g := f.(type) {
	case Truth, Atom, Eq:
		return 1
	case Not:
		return 1 + Size(g.F)
	case And:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	case Or:
		n := 1
		for _, sub := range g.Fs {
			n += Size(sub)
		}
		return n
	case Implies:
		return 1 + Size(g.Hyp) + Size(g.Concl)
	case Exists:
		return 1 + Size(g.F)
	case Forall:
		return 1 + Size(g.F)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// QuantifierRank returns the maximum nesting depth of quantifiers.
func QuantifierRank(f Formula) int {
	switch g := f.(type) {
	case Truth, Atom, Eq:
		return 0
	case Not:
		return QuantifierRank(g.F)
	case And:
		m := 0
		for _, sub := range g.Fs {
			if r := QuantifierRank(sub); r > m {
				m = r
			}
		}
		return m
	case Or:
		m := 0
		for _, sub := range g.Fs {
			if r := QuantifierRank(sub); r > m {
				m = r
			}
		}
		return m
	case Implies:
		h, c := QuantifierRank(g.Hyp), QuantifierRank(g.Concl)
		if h > c {
			return h
		}
		return c
	case Exists:
		return 1 + QuantifierRank(g.F)
	case Forall:
		return 1 + QuantifierRank(g.F)
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}
