package db

import "encoding/json"

// dbWire is the JSON shape of a database: its facts in insertion order.
// Indexes and blocks are rebuilt on decode, exactly as in the gob snapshot
// format; the JSON form exists for the certd wire protocol, where sampled
// falsifying repairs travel inside verdicts.
type dbWire struct {
	Facts []Fact `json:"facts"`
}

// MarshalJSON encodes the database as its fact list.
func (d *DB) MarshalJSON() ([]byte, error) {
	return json.Marshal(dbWire{Facts: d.facts})
}

// UnmarshalJSON decodes a database produced by MarshalJSON, rebuilding all
// indexes and rejecting invalid facts and signature conflicts.
func (d *DB) UnmarshalJSON(data []byte) error {
	var w dbWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := New()
	for _, f := range w.Facts {
		if err := out.Add(f); err != nil {
			return err
		}
	}
	d.assignFrom(out)
	return nil
}
