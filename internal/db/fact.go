// Package db implements uncertain databases: finite sets of facts over
// relations with primary-key signatures, where distinct key-equal facts may
// coexist (Section 3 of the paper). It provides blocks, consistency,
// repairs (maximal consistent subsets), repair counting and enumeration,
// and a textual format shared with the query language.
package db

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// Fact is a ground atom: a relation name, a key length, and constant
// arguments. The first KeyLen arguments are the primary key.
type Fact struct {
	Rel    string   `json:"rel"`
	KeyLen int      `json:"key_len"`
	Args   []string `json:"args"`
}

// NewFact builds a fact, panicking on an invalid signature (programming
// error).
func NewFact(rel string, keyLen int, args ...string) Fact {
	f := Fact{Rel: rel, KeyLen: keyLen, Args: args}
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return f
}

// MaxArity caps the number of arguments a fact may carry. Real schemas are
// tiny; the cap exists so adversarial inputs (hand-crafted snapshots,
// generated text files) cannot make a single row arbitrarily large.
const MaxArity = 1024

// Validate checks the signature constraint n >= k >= 1 plus the defensive
// input limits: bounded arity and no NUL bytes (which would corrupt the
// length-prefixed ID encodings' readability in logs and break the textual
// interchange format).
func (f Fact) Validate() error {
	if f.Rel == "" {
		return fmt.Errorf("db: fact with empty relation name")
	}
	if len(f.Args) > MaxArity {
		return fmt.Errorf("db: fact %s has %d arguments, exceeding the maximum arity %d", f.Rel, len(f.Args), MaxArity)
	}
	if f.KeyLen < 1 || f.KeyLen > len(f.Args) {
		return fmt.Errorf("db: fact %s has invalid signature [%d,%d]", f.Rel, len(f.Args), f.KeyLen)
	}
	if strings.IndexByte(f.Rel, 0) >= 0 {
		return fmt.Errorf("db: relation name contains a NUL byte")
	}
	for _, a := range f.Args {
		if strings.IndexByte(a, 0) >= 0 {
			return fmt.Errorf("db: fact %s has an argument containing a NUL byte", f.Rel)
		}
	}
	return nil
}

// KeyArgs returns the primary-key constants.
func (f Fact) KeyArgs() []string { return f.Args[:f.KeyLen] }

// encodeParts writes a length-prefixed, unambiguous encoding of parts.
func encodeParts(b *strings.Builder, parts []string) {
	for _, p := range parts {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
}

// ID returns a canonical encoding identifying the fact (relation plus all
// arguments), safe for use as a map key even when constants contain
// delimiter characters.
func (f Fact) ID() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('/')
	encodeParts(&b, f.Args)
	return b.String()
}

// BlockID returns a canonical encoding of the fact's block: the relation
// plus the primary-key arguments. Two facts are key-equal iff their
// BlockIDs coincide.
func (f Fact) BlockID() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('/')
	encodeParts(&b, f.KeyArgs())
	return b.String()
}

// KeyEqual reports whether f and g are key-equal: same relation name and
// same primary-key value.
func (f Fact) KeyEqual(g Fact) bool {
	if f.Rel != g.Rel || f.KeyLen != g.KeyLen {
		return false
	}
	for i := 0; i < f.KeyLen; i++ {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Equal reports full equality of two facts.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel || f.KeyLen != g.KeyLen || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Atom converts the fact to a ground atom.
func (f Fact) Atom() cq.Atom {
	args := make([]cq.Term, len(f.Args))
	for i, a := range f.Args {
		args[i] = cq.Const(a)
	}
	return cq.Atom{Rel: f.Rel, KeyLen: f.KeyLen, Args: args}
}

// FactFromAtom converts a ground atom to a fact; it reports ok=false when
// the atom contains variables.
func FactFromAtom(a cq.Atom) (Fact, bool) {
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			return Fact{}, false
		}
		args[i] = t.Value
	}
	return Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}, true
}

// isBareConstant reports whether s can be rendered unquoted in the textual
// database format (identifier- or number-shaped, nonempty).
func isBareConstant(s string) bool {
	if s == "" {
		return false
	}
	isLetter := func(r byte) bool {
		return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
	}
	isDigit := func(r byte) bool { return r >= '0' && r <= '9' }
	if isLetter(s[0]) {
		for i := 1; i < len(s); i++ {
			if !isLetter(s[i]) && !isDigit(s[i]) {
				return false
			}
		}
		return true
	}
	if isDigit(s[0]) {
		// The lexer tokenizes digits and dots as a single numeric constant.
		for i := 1; i < len(s); i++ {
			if !isDigit(s[i]) && s[i] != '.' {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the fact as R(a, b | c); constants that are not
// identifier-shaped are quoted.
func (f Fact) String() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			if i == f.KeyLen {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		if isBareConstant(a) {
			b.WriteString(a)
		} else {
			b.WriteString(cq.Const(a).String())
		}
	}
	b.WriteByte(')')
	return b.String()
}
