package db

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestParseRejectsNUL: adversarial NUL bytes are reported as errors, both
// at the top of Parse and through Fact.Validate.
func TestParseRejectsNUL(t *testing.T) {
	if _, err := Parse("R(a \x00 | b)"); err == nil || !strings.Contains(err.Error(), "NUL") {
		t.Errorf("Parse with raw NUL: err = %v, want a NUL-byte error", err)
	}
	if err := (Fact{Rel: "R", KeyLen: 1, Args: []string{"a\x00b"}}).Validate(); err == nil {
		t.Error("Validate accepted an argument containing NUL")
	}
	if err := (Fact{Rel: "R\x00", KeyLen: 1, Args: []string{"a"}}).Validate(); err == nil {
		t.Error("Validate accepted a relation name containing NUL")
	}
}

// TestParseRejectsOversizedRow: rows wider than MaxArity are errors, not
// memory bombs.
func TestParseRejectsOversizedRow(t *testing.T) {
	var b strings.Builder
	b.WriteString("R(k")
	for i := 0; i <= MaxArity; i++ {
		b.WriteString(", a")
	}
	b.WriteString(")")
	if _, err := Parse(b.String()); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("oversized row: err = %v, want an arity error", err)
	}
}

// TestParseRejectsConflictingSignatures: a relation may not appear with two
// different signatures (the textual analogue of duplicate conflicting
// relation headers).
func TestParseRejectsConflictingSignatures(t *testing.T) {
	for _, input := range []string{
		"R(a | b)\nR(a, b | c)",
		"R(a)\nR(a | b)",
	} {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) accepted conflicting signatures", input)
		}
	}
}

// TestReadSnapshotGarbage: arbitrary bytes and invalid embedded facts must
// come back as errors, never panics.
func TestReadSnapshotGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("garbage"),
		bytes.Repeat([]byte{0x7f}, 1024),
	} {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("ReadSnapshot(%d garbage bytes) succeeded", len(data))
		}
	}
	// A structurally valid snapshot holding an invalid fact is rejected too.
	var buf bytes.Buffer
	d := MustParse("R(a | b)")
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(good)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

// TestDBJSONRoundTrip: the JSON encoding used by the certd wire protocol
// preserves the fact set and rejects invalid fact lists.
func TestDBJSONRoundTrip(t *testing.T) {
	d := MustParse("C(PODS, 2016 | Rome)\nC(PODS, 2016 | Paris)\nR(PODS | A)")
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back DB
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !d.Equal(&back) {
		t.Fatalf("round trip changed database:\n%s\nvs\n%s", d, &back)
	}
	if err := json.Unmarshal([]byte(`{"facts":[{"rel":"R","key_len":9,"args":["a"]}]}`), &back); err == nil {
		t.Error("unmarshal accepted an invalid signature")
	}
}
