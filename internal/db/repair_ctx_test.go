package db

import (
	"context"
	"errors"
	"sort"
	"testing"

	"github.com/cqa-go/certainty/internal/govern"
)

func repairKey(repair []Fact) string {
	ids := make([]string, len(repair))
	for i, f := range repair {
		ids[i] = f.ID()
	}
	sort.Strings(ids)
	s := ""
	for _, id := range ids {
		s += id + ";"
	}
	return s
}

func TestEachRepairCtxMatchesEachRepair(t *testing.T) {
	d := MustParse("R(a | b), R(a | c), S(x | y), S(x | z), T(q | w)")
	want := map[string]bool{}
	d.EachRepair(func(repair []Fact) bool {
		want[repairKey(repair)] = true
		return true
	})
	got := map[string]bool{}
	done, err := d.EachRepairCtx(context.Background(), func(repair []Fact) bool {
		got[repairKey(repair)] = true
		return true
	})
	if err != nil || !done {
		t.Fatalf("EachRepairCtx: done=%v err=%v", done, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d repairs, EachRepair enumerated %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("repair %s missing from the governed enumeration", k)
		}
	}
}

func TestEachRepairCtxBudget(t *testing.T) {
	d := MustParse("R(a | b), R(a | c), S(x | y), S(x | z), T(q | w)")
	g := govern.New(context.Background(), govern.Options{Budget: 2})
	defer g.Close()
	var seen int
	done, err := d.EachRepairCtx(g.Attach(), func([]Fact) bool {
		seen++
		return true
	})
	if !errors.Is(err, govern.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if done {
		t.Fatal("done = true on a budget-cut enumeration")
	}
	if seen > 2 {
		t.Fatalf("yielded %d repairs past a 2-step budget", seen)
	}
}

func TestEachRepairCtxEarlyStop(t *testing.T) {
	d := MustParse("R(a | b), R(a | c)")
	done, err := d.EachRepairCtx(context.Background(), func([]Fact) bool { return false })
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if done {
		t.Fatal("done = true after the yield asked to stop")
	}
}
