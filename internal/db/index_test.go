package db

import (
	"reflect"
	"testing"
)

func indexTestDB(t *testing.T) *DB {
	t.Helper()
	return MustParse(`
		R(a | b)
		R(a | c)
		R(b | b)
		S(b, c | a)
		S(b, c | d)
		T(x | y)
	`)
}

// legacyClone is the pre-index Clone path: re-inserting every fact through
// Add. The structural copy must be indistinguishable from it.
func legacyClone(d *DB) *DB {
	c := New()
	for _, f := range d.Facts() {
		if err := c.Add(f); err != nil {
			panic(err)
		}
	}
	return c
}

func TestCloneStructuralMatchesLegacy(t *testing.T) {
	d := indexTestDB(t)
	structural := d.Clone()
	legacy := legacyClone(d)

	if !structural.Equal(legacy) || !legacy.Equal(structural) {
		t.Fatal("structural clone differs from legacy clone as a fact set")
	}
	if structural.String() != legacy.String() {
		t.Fatalf("rendering differs:\n%s\nvs\n%s", structural, legacy)
	}
	if !reflect.DeepEqual(structural.Blocks(), legacy.Blocks()) {
		t.Fatal("block structure differs")
	}
	if !reflect.DeepEqual(structural.Relations(), legacy.Relations()) {
		t.Fatal("relation sets differ")
	}
	for _, rel := range legacy.Relations() {
		if !reflect.DeepEqual(structural.FactsOf(rel), legacy.FactsOf(rel)) {
			t.Fatalf("FactsOf(%s) differs", rel)
		}
		a1, k1, _ := structural.Signature(rel)
		a2, k2, _ := legacy.Signature(rel)
		if a1 != a2 || k1 != k2 {
			t.Fatalf("Signature(%s) differs", rel)
		}
	}
	if structural.NumRepairs().Cmp(legacy.NumRepairs()) != 0 {
		t.Fatal("repair counts differ")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	d := indexTestDB(t)
	c := d.Clone()
	if err := c.Add(NewFact("U", 1, "new")); err != nil {
		t.Fatal(err)
	}
	if d.Has(NewFact("U", 1, "new")) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if !c.Remove(NewFact("T", 1, "x", "y")) {
		t.Fatal("Remove on clone failed")
	}
	if !d.Has(NewFact("T", 1, "x", "y")) {
		t.Fatal("removing from the clone leaked into the original")
	}
}

func TestBlocksOfMatchesDerivation(t *testing.T) {
	d := indexTestDB(t)
	// Reference: the per-call derivation the solver used to perform.
	want := func(rel string) [][]Fact {
		var out [][]Fact
		seen := make(map[string]bool)
		for _, f := range d.FactsOf(rel) {
			bid := f.BlockID()
			if seen[bid] {
				continue
			}
			seen[bid] = true
			out = append(out, d.Block(f))
		}
		return out
	}
	for _, rel := range d.Relations() {
		if got := d.BlocksOf(rel); !reflect.DeepEqual(got, want(rel)) {
			t.Fatalf("BlocksOf(%s) = %v, want %v", rel, got, want(rel))
		}
	}
	if d.BlocksOf("missing") != nil {
		t.Fatal("BlocksOf of an absent relation must be nil")
	}
}

func TestRelationFactsShared(t *testing.T) {
	d := indexTestDB(t)
	for _, rel := range d.Relations() {
		if !reflect.DeepEqual(d.RelationFacts(rel), d.FactsOf(rel)) {
			t.Fatalf("RelationFacts(%s) differs from FactsOf", rel)
		}
		if d.RelationSize(rel) != len(d.FactsOf(rel)) {
			t.Fatalf("RelationSize(%s) mismatch", rel)
		}
	}
	// Memoized: same backing array across calls.
	a := d.RelationFacts("R")
	b := d.RelationFacts("R")
	if &a[0] != &b[0] {
		t.Fatal("RelationFacts is not memoized")
	}
}

func TestFactsAtPostings(t *testing.T) {
	d := indexTestDB(t)
	// Reference: filter the relation scan.
	want := func(rel string, pos int, value string) []Fact {
		var out []Fact
		for _, f := range d.FactsOf(rel) {
			if pos < len(f.Args) && f.Args[pos] == value {
				out = append(out, f)
			}
		}
		return out
	}
	cases := []struct {
		rel   string
		pos   int
		value string
	}{
		{"R", 0, "a"}, {"R", 1, "b"}, {"R", 1, "c"},
		{"S", 0, "b"}, {"S", 2, "a"}, {"S", 2, "d"},
		{"R", 0, "zzz"}, {"R", 5, "a"}, {"Q", 0, "a"},
	}
	for _, c := range cases {
		got := d.FactsAt(c.rel, c.pos, c.value)
		if !reflect.DeepEqual(got, want(c.rel, c.pos, c.value)) {
			t.Fatalf("FactsAt(%s,%d,%s) = %v, want %v", c.rel, c.pos, c.value, got, want(c.rel, c.pos, c.value))
		}
	}
}

func TestBlockViewMatchesBlock(t *testing.T) {
	d := indexTestDB(t)
	for _, f := range d.Facts() {
		if !reflect.DeepEqual(d.BlockView(f), d.Block(f)) {
			t.Fatalf("BlockView(%v) differs from Block", f)
		}
	}
	if d.BlockView(NewFact("R", 1, "nope", "x")) != nil {
		t.Fatal("BlockView of an absent block must be nil")
	}
}

func TestIndexInvalidationOnMutation(t *testing.T) {
	d := MustParse("R(a | b)")
	if n := len(d.BlocksOf("R")); n != 1 {
		t.Fatalf("BlocksOf(R) = %d blocks, want 1", n)
	}
	dig1 := d.Digest()

	// Add a key-equal fact: the block list, postings, and digest must all
	// reflect it.
	if err := d.Add(NewFact("R", 1, "a", "c")); err != nil {
		t.Fatal(err)
	}
	if n := len(d.BlocksOf("R")[0]); n != 2 {
		t.Fatalf("block size after Add = %d, want 2", n)
	}
	if len(d.FactsAt("R", 1, "c")) != 1 {
		t.Fatal("postings not rebuilt after Add")
	}
	if d.Digest() == dig1 {
		t.Fatal("digest did not change after Add")
	}

	// Remove: back to the original content, digest must round-trip.
	if !d.Remove(NewFact("R", 1, "a", "c")) {
		t.Fatal("Remove failed")
	}
	if d.Digest() != dig1 {
		t.Fatal("digest does not round-trip after Remove")
	}

	// RemoveBlock: empty database.
	if n := d.RemoveBlock(NewFact("R", 1, "a", "b")); n != 1 {
		t.Fatalf("RemoveBlock = %d, want 1", n)
	}
	if d.BlocksOf("R") != nil || d.Len() != 0 {
		t.Fatal("index stale after RemoveBlock")
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	a := MustParse("R(a | b), R(a | c), S(x | y)")
	b := MustParse("S(x | y), R(a | c), R(a | b)")
	if a.Digest() != b.Digest() {
		t.Fatal("digest must be insertion-order independent")
	}
	c := MustParse("R(a | b), R(a | c)")
	if a.Digest() == c.Digest() {
		t.Fatal("different fact sets must digest differently")
	}
	// Key length participates: same rendered args, different signature.
	d1 := MustFromFacts(Fact{Rel: "R", KeyLen: 1, Args: []string{"a", "b"}})
	d2 := MustFromFacts(Fact{Rel: "R", KeyLen: 2, Args: []string{"a", "b"}})
	if d1.Digest() == d2.Digest() {
		t.Fatal("digest must distinguish key lengths")
	}
}

func TestDigestSharedByClone(t *testing.T) {
	d := indexTestDB(t)
	if d.Clone().Digest() != d.Digest() {
		t.Fatal("clone digest differs")
	}
}

func TestConcurrentIndexReads(t *testing.T) {
	d := indexTestDB(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				_ = d.Digest()
				_ = d.BlocksOf("R")
				_ = d.RelationFacts("S")
				_ = d.FactsAt("R", 0, "a")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
