package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// ReadCSV loads the rows of a CSV stream as facts of one relation: every
// row becomes rel(row[0..keyLen-1] | row[keyLen..]). All rows must have the
// same width; duplicates collapse. Use multiple calls to load several
// relations into the same database.
func (d *DB) ReadCSV(rel string, keyLen int, r io.Reader) error {
	reader := csv.NewReader(r)
	reader.FieldsPerRecord = -1 // validated below for a better message
	width := -1
	row := 0
	for {
		record, err := reader.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: csv %s row %d: %w", rel, row+1, err)
		}
		row++
		if width == -1 {
			width = len(record)
			if keyLen < 1 || keyLen > width {
				return fmt.Errorf("db: csv %s: key length %d invalid for width %d", rel, keyLen, width)
			}
		} else if len(record) != width {
			return fmt.Errorf("db: csv %s row %d: %d fields, want %d", rel, row, len(record), width)
		}
		args := make([]string, len(record))
		copy(args, record)
		if err := d.Add(Fact{Rel: rel, KeyLen: keyLen, Args: args}); err != nil {
			return fmt.Errorf("db: csv %s row %d: %w", rel, row, err)
		}
	}
}

// WriteCSV writes the facts of one relation as CSV rows (all columns, key
// first), sorted lexicographically for deterministic output.
func (d *DB) WriteCSV(rel string, w io.Writer) error {
	facts := d.FactsOf(rel)
	rows := make([][]string, len(facts))
	for i, f := range facts {
		rows[i] = f.Args
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	writer := csv.NewWriter(w)
	for _, row := range rows {
		if err := writer.Write(row); err != nil {
			return err
		}
	}
	writer.Flush()
	return writer.Error()
}
