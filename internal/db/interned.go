package db

import (
	"github.com/cqa-go/certainty/internal/intern"
	"github.com/cqa-go/certainty/internal/obs"
)

var internBuilds = obs.Default.Counter("db_intern_builds_total")

func init() {
	obs.Default.Help("db_intern_builds_total", "Interned columnar views built (first use after mutation).")
}

// Interned is the dense-id columnar view of a database: every relation name
// and constant is interned to a uint32, and each relation's facts are stored
// as per-column []uint32 with block-offset arrays. It is an immutable
// snapshot built lazily on first use (DB.Interned) and dropped on mutation;
// evaluation hot paths in engine/fo/solver run entirely over it, touching
// strings only at the boundary (query compile, result materialization).
//
// Id assignment is deterministic: relation names and arguments are interned
// by one pass over the global fact insertion order. Snapshots preserve that
// order, so a save→reload round-trip reproduces the exact same ids (locked
// by TestInternedSnapshotStableIDs). Digests are computed from strings and
// never consult this view, so interning is digest-compatible by
// construction.
type Interned struct {
	// Syms maps symbols ↔ dense ids. Read-only after build.
	Syms *intern.Table

	rels map[string]*IRel

	// domain lists the distinct ids occurring as fact arguments, in first
	// occurrence order; isDomainSym is the membership vector indexed by id
	// (relation names intern too, so the active domain is a subset of the
	// table).
	domain      []uint32
	isDomainSym []bool
}

// IRel is one relation's columnar storage. Fact index i is the relation's
// insertion position (identical to RelationFacts(rel)[i]); all index
// structures yield fact indices in ascending order, which IS insertion
// order — the invariant that makes interned enumeration byte-compatible
// with the string paths.
type IRel struct {
	// Arity and KeyLen mirror the relation signature.
	Arity  int
	KeyLen int
	// Cols holds the facts column-wise: Cols[pos][i] is the id of argument
	// pos of fact i. len(Cols) == Arity, len(Cols[pos]) == NumFacts().
	Cols [][]uint32
	// ByBlock lists fact indices grouped by block — blocks in
	// first-insertion order, facts in insertion order within each — and
	// BlockOff marks the group boundaries: block b spans
	// ByBlock[BlockOff[b]:BlockOff[b+1]].
	ByBlock  []uint32
	BlockOff []uint32
	// BlockOfFact maps each fact index to its block ordinal.
	BlockOfFact []uint32

	blockIdx map[uint64][]uint32   // hash(key ids) → block ordinals (verify on probe)
	factIdx  map[uint64][]uint32   // hash(all ids) → fact indices (verify on probe)
	postings []map[uint32][]uint32 // per position: id → ascending fact indices
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashIDs is FNV-1a folding each id in one step. Probes verify against the
// columns, so occasional collisions cost a comparison, never a wrong answer.
func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return h
}

// NumFacts returns the number of facts of the relation.
func (r *IRel) NumFacts() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// NumBlocks returns the number of blocks of the relation.
func (r *IRel) NumBlocks() int { return len(r.BlockOff) - 1 }

// BlockSpan returns the fact indices of block b (insertion order) as a
// shared sub-slice of ByBlock. Zero-alloc.
func (r *IRel) BlockSpan(b int) []uint32 {
	return r.ByBlock[r.BlockOff[b]:r.BlockOff[b+1]]
}

// keyMatches reports whether the fact at index fi carries exactly the given
// key ids.
func (r *IRel) keyMatches(fi uint32, key []uint32) bool {
	for p, id := range key {
		if r.Cols[p][fi] != id {
			return false
		}
	}
	return true
}

// BlockOf returns the fact indices of the block with the given key ids
// (len(key) must be KeyLen), or (nil, false) when no such block exists.
// Zero-alloc: the result is a shared sub-slice of ByBlock.
func (r *IRel) BlockOf(key []uint32) ([]uint32, bool) {
	for _, b := range r.blockIdx[hashIDs(key)] {
		span := r.BlockSpan(int(b))
		if r.keyMatches(span[0], key) {
			return span, true
		}
	}
	return nil, false
}

// FactIndex returns the index of the fact with exactly the given argument
// ids (len(args) must be Arity), or (0, false) when absent. Zero-alloc.
func (r *IRel) FactIndex(args []uint32) (uint32, bool) {
	for _, fi := range r.factIdx[hashIDs(args)] {
		if r.keyMatches(fi, args) {
			return fi, true
		}
	}
	return 0, false
}

// HasTuple reports whether the relation contains a fact with exactly the
// given argument ids. The key length is not part of the identity, matching
// DB.Has (Fact.ID encodes relation and arguments only). Zero-alloc.
func (r *IRel) HasTuple(args []uint32) bool {
	_, ok := r.FactIndex(args)
	return ok
}

// Posting returns the ascending fact indices carrying id at argument
// position pos, as a shared slice. Zero-alloc.
func (r *IRel) Posting(pos int, id uint32) []uint32 {
	return r.postings[pos][id]
}

// Arg returns the id of argument pos of fact fi.
func (r *IRel) Arg(fi uint32, pos int) uint32 { return r.Cols[pos][fi] }

// Rel returns the columnar storage of the named relation, or nil when the
// relation is absent.
func (in *Interned) Rel(name string) *IRel { return in.rels[name] }

// Domain returns the distinct ids occurring as fact arguments, in first
// occurrence order. Shared; must not be modified.
func (in *Interned) Domain() []uint32 { return in.domain }

// IsDomainSym reports whether id occurs as a fact argument. Ids outside the
// table (including intern.None and formula-constant pseudo-ids) are safely
// outside the domain.
func (in *Interned) IsDomainSym(id uint32) bool {
	return int64(id) < int64(len(in.isDomainSym)) && in.isDomainSym[id]
}

// Stats reports the symbol-table census and hit/miss telemetry of this view.
func (in *Interned) Stats() intern.Stats { return in.Syms.Stats() }

// Interned returns the dense-id columnar view of the database, building it
// on first use. The view is an immutable snapshot: mutations drop the
// pointer and the next call rebuilds. Clones share the view (it is
// immutable), so cloning stays O(facts) flat copies. Safe for concurrent
// readers; like all DB reads it must not race with mutations.
func (d *DB) Interned() *Interned {
	if in := d.interned.Load(); in != nil {
		return in
	}
	in := d.buildInterned()
	if !d.interned.CompareAndSwap(nil, in) {
		return d.interned.Load()
	}
	return in
}

// buildInterned constructs the columnar view. Pass 1 interns symbols in
// global fact insertion order (fixing the deterministic id assignment and
// the active domain); pass 2 lays out each relation column-wise and builds
// the block/fact/posting indexes from the relation's own insertion-ordered
// structures.
func (d *DB) buildInterned() *Interned {
	internBuilds.Inc()
	syms := intern.NewTable()
	in := &Interned{
		Syms: syms,
		rels: make(map[string]*IRel, len(d.rels)),
	}
	seen := make(map[uint32]struct{})
	for _, f := range d.facts {
		syms.Intern(f.Rel)
		for _, a := range f.Args {
			id := syms.Intern(a)
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				in.domain = append(in.domain, id)
			}
		}
	}
	in.isDomainSym = make([]bool, syms.Len())
	for _, id := range in.domain {
		in.isDomainSym[id] = true
	}

	for name, r := range d.rels {
		ir := &IRel{
			Arity:       r.sig[0],
			KeyLen:      r.sig[1],
			Cols:        make([][]uint32, r.sig[0]),
			ByBlock:     make([]uint32, 0, len(r.facts)),
			BlockOff:    make([]uint32, 1, len(r.blockOrder)+1),
			BlockOfFact: make([]uint32, len(r.facts)),
			blockIdx:    make(map[uint64][]uint32, len(r.blockOrder)),
			factIdx:     make(map[uint64][]uint32, len(r.facts)),
			postings:    make([]map[uint32][]uint32, r.sig[0]),
		}
		for p := range ir.Cols {
			ir.Cols[p] = make([]uint32, len(r.facts))
			ir.postings[p] = make(map[uint32][]uint32)
		}
		args := make([]uint32, r.sig[0])
		for i, f := range r.facts {
			for p, a := range f.Args {
				id, _ := syms.Lookup(a)
				ir.Cols[p][i] = id
				ir.postings[p][id] = append(ir.postings[p][id], uint32(i))
				args[p] = id
			}
			h := hashIDs(args)
			ir.factIdx[h] = append(ir.factIdx[h], uint32(i))
		}
		for b, bid := range r.blockOrder {
			blk := r.blocks[bid]
			for _, f := range blk {
				fi := uint32(r.ids[f.ID()])
				ir.ByBlock = append(ir.ByBlock, fi)
				ir.BlockOfFact[fi] = uint32(b)
			}
			ir.BlockOff = append(ir.BlockOff, uint32(len(ir.ByBlock)))
			first := ir.ByBlock[ir.BlockOff[b]]
			kh := hashIDs(keyOf(ir, first))
			ir.blockIdx[kh] = append(ir.blockIdx[kh], uint32(b))
		}
		in.rels[name] = ir
	}
	return in
}

// keyOf reads the key ids of fact fi into a fresh slice (build-time only).
func keyOf(r *IRel, fi uint32) []uint32 {
	key := make([]uint32, r.KeyLen)
	for p := 0; p < r.KeyLen; p++ {
		key[p] = r.Cols[p][fi]
	}
	return key
}
