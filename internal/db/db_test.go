package db

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
)

// conferenceDB returns the Fig. 1 uncertain database.
func conferenceDB() *DB {
	return MustParse(`
		C(PODS, 2016 | Rome)
		C(PODS, 2016 | Paris)
		C(KDD, 2017 | Rome)
		R(PODS | A)
		R(KDD | A)
		R(KDD | B)
	`)
}

func TestFactBasics(t *testing.T) {
	f := NewFact("R", 1, "a", "b")
	g := NewFact("R", 1, "a", "c")
	h := NewFact("R", 1, "x", "b")
	if !f.KeyEqual(g) || f.KeyEqual(h) {
		t.Error("KeyEqual wrong")
	}
	if f.Equal(g) || !f.Equal(NewFact("R", 1, "a", "b")) {
		t.Error("Equal wrong")
	}
	if f.BlockID() != g.BlockID() || f.BlockID() == h.BlockID() {
		t.Error("BlockID wrong")
	}
	if f.ID() == g.ID() {
		t.Error("distinct facts must have distinct IDs")
	}
	if got := f.String(); got != "R(a | b)" {
		t.Errorf("String = %q", got)
	}
	weird := NewFact("R", 1, "hello world", "1a", "3.5")
	if got := weird.String(); got != "R('hello world' | '1a', 3.5)" {
		t.Errorf("String with quoting = %q", got)
	}
}

func TestFactIDUnambiguous(t *testing.T) {
	// Constants containing delimiters must not collide.
	a := NewFact("R", 2, "a:b", "c")
	b := NewFact("R", 2, "a", "b:c")
	if a.ID() == b.ID() || a.BlockID() == b.BlockID() {
		t.Error("length-prefixed encoding must disambiguate")
	}
}

func TestFactAtomRoundTrip(t *testing.T) {
	f := NewFact("R", 1, "a", "b")
	a := f.Atom()
	if a.Rel != "R" || a.KeyLen != 1 || !a.IsGround() {
		t.Errorf("Atom = %v", a)
	}
	g, ok := FactFromAtom(a)
	if !ok || !g.Equal(f) {
		t.Errorf("FactFromAtom round trip failed: %v %v", g, ok)
	}
	if _, ok := FactFromAtom(cq.NewAtom("R", 1, cq.Var("x"))); ok {
		t.Error("FactFromAtom must reject variables")
	}
}

func TestDBAddDedupAndSignature(t *testing.T) {
	d := New()
	if err := d.Add(NewFact("R", 1, "a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(NewFact("R", 1, "a", "b")); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("dedup failed: %d", d.Len())
	}
	if err := d.Add(Fact{Rel: "R", KeyLen: 2, Args: []string{"a", "b"}}); err == nil {
		t.Error("signature conflict should be rejected")
	}
	if err := d.Add(Fact{Rel: "S", KeyLen: 0, Args: []string{"a"}}); err == nil {
		t.Error("invalid fact should be rejected")
	}
}

func TestConferenceDBShape(t *testing.T) {
	d := conferenceDB()
	if d.Len() != 6 {
		t.Fatalf("Fig.1 has 6 facts, got %d", d.Len())
	}
	if d.NumBlocks() != 4 {
		t.Errorf("Fig.1 has 4 blocks, got %d", d.NumBlocks())
	}
	if d.IsConsistent() {
		t.Error("Fig.1 database is inconsistent")
	}
	// "The database has four repairs."
	if d.NumRepairs().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("Fig.1 has 4 repairs, got %v", d.NumRepairs())
	}
	blk := d.Block(NewFact("C", 2, "PODS", "2016", "anything"))
	if len(blk) != 2 {
		t.Errorf("PODS-2016 block has 2 facts, got %d", len(blk))
	}
	if got := len(d.FactsOf("R")); got != 3 {
		t.Errorf("R has 3 facts, got %d", got)
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0] != "C" || rels[1] != "R" {
		t.Errorf("Relations = %v", rels)
	}
	if ar, kl, ok := d.Signature("C"); !ok || ar != 3 || kl != 2 {
		t.Errorf("Signature(C) = %d %d %v", ar, kl, ok)
	}
	dom := d.ActiveDomain()
	if len(dom) != 7 { // PODS KDD 2016 2017 Rome Paris A B → 8? count: PODS,2016,Rome,Paris,KDD,2017,A,B = 8
		// fixed below; keep the informative failure
		t.Logf("active domain: %v", dom)
	}
}

func TestActiveDomain(t *testing.T) {
	d := conferenceDB()
	dom := d.ActiveDomain()
	want := []string{"2016", "2017", "A", "B", "KDD", "PODS", "Paris", "Rome"}
	if len(dom) != len(want) {
		t.Fatalf("ActiveDomain = %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("ActiveDomain = %v, want %v", dom, want)
		}
	}
}

func TestRepairEnumeration(t *testing.T) {
	d := conferenceDB()
	count := 0
	seen := map[string]bool{}
	d.EachRepair(func(r []Fact) bool {
		count++
		rd := RepairDB(r)
		if !rd.IsConsistent() {
			t.Error("repair not consistent")
		}
		if rd.NumBlocks() != d.NumBlocks() {
			t.Error("repair must pick one fact per block (maximality)")
		}
		seen[rd.String()] = true
		return true
	})
	if count != 4 || len(seen) != 4 {
		t.Errorf("expected 4 distinct repairs, got %d (%d distinct)", count, len(seen))
	}
}

func TestEachRepairEarlyStop(t *testing.T) {
	d := conferenceDB()
	count := 0
	completed := d.EachRepair(func(r []Fact) bool {
		count++
		return count < 2
	})
	if completed || count != 2 {
		t.Errorf("early stop failed: completed=%v count=%d", completed, count)
	}
}

func TestEmptyDB(t *testing.T) {
	d := New()
	if !d.IsConsistent() {
		t.Error("empty database is consistent")
	}
	if d.NumRepairs().Cmp(big.NewInt(1)) != 0 {
		t.Error("empty database has exactly one repair (the empty one)")
	}
	count := 0
	d.EachRepair(func(r []Fact) bool {
		count++
		if len(r) != 0 {
			t.Error("repair of empty database must be empty")
		}
		return true
	})
	if count != 1 {
		t.Errorf("expected 1 repair, got %d", count)
	}
}

func TestCloneRestrictWithoutBlock(t *testing.T) {
	d := conferenceDB()
	c := d.Clone()
	if !c.Equal(d) {
		t.Error("clone not equal")
	}
	c.Add(NewFact("R", 1, "ICDT", "A"))
	if d.Has(NewFact("R", 1, "ICDT", "A")) {
		t.Error("Clone aliases receiver")
	}
	onlyC := d.Restrict(func(f Fact) bool { return f.Rel == "C" })
	if onlyC.Len() != 3 {
		t.Errorf("Restrict: %d", onlyC.Len())
	}
	nb := d.WithoutBlock(NewFact("C", 2, "PODS", "2016", "x"))
	if nb.Len() != 4 {
		t.Errorf("WithoutBlock: %d", nb.Len())
	}
	if nb.Has(NewFact("C", 2, "PODS", "2016", "Rome")) {
		t.Error("block not removed")
	}
}

func TestUnion(t *testing.T) {
	a := MustParse("R(a | b)")
	b := MustParse("R(a | c), S(x | y)")
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 || u.NumBlocks() != 2 {
		t.Errorf("Union: len=%d blocks=%d", u.Len(), u.NumBlocks())
	}
	c := MustParse("R(a, b | c)") // signature conflict with a
	if _, err := Union(a, c); err == nil {
		t.Error("Union must reject signature conflicts")
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse("R(x | "); err == nil {
		t.Error("unclosed fact should fail")
	}
	if _, err := Parse("R(a|b), R(a,b|c)"); err == nil {
		t.Error("signature conflict should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := conferenceDB()
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip failed:\n%s\nvs\n%s", d, d2)
	}
	// Constants needing quoting survive the round trip too.
	w := MustFromFacts(NewFact("R", 1, "hello world", "it's", `a\b`, "⟨x,y⟩"))
	w2, err := Parse(w.String())
	if err != nil {
		t.Fatalf("reparse quoted: %v (%q)", err, w.String())
	}
	if !w.Equal(w2) {
		t.Errorf("quoted round trip failed: %q vs %q", w.String(), w2.String())
	}
}

func TestBlocksOrderDeterministic(t *testing.T) {
	d := conferenceDB()
	blocks := d.Blocks()
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[0][0].Rel != "C" || blocks[0][0].Args[0] != "PODS" {
		t.Errorf("first block should be PODS-2016: %v", blocks[0])
	}
	if !strings.HasPrefix(d.String(), "C(PODS, 2016 | ") {
		t.Errorf("String order: %q", d.String())
	}
}

// Property: number of enumerated repairs equals the product of block sizes,
// and every repair is a maximal consistent subset.
func TestQuickRepairCount(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		d := New()
		numBlocks := next(4)
		total := 1
		for b := 0; b < numBlocks; b++ {
			size := 1 + next(3)
			total *= size
			for i := 0; i < size; i++ {
				d.Add(NewFact("R", 1, string(rune('a'+b)), string(rune('0'+i))))
			}
		}
		if d.NumRepairs().Cmp(big.NewInt(int64(total))) != 0 {
			return false
		}
		count := 0
		ok := true
		d.EachRepair(func(rep []Fact) bool {
			count++
			rd := RepairDB(rep)
			if !rd.IsConsistent() || rd.NumBlocks() != d.NumBlocks() {
				ok = false
			}
			return true
		})
		return ok && count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRepairAt(t *testing.T) {
	d := conferenceDB()
	total := d.NumRepairs()
	// Collect repairs via enumeration and compare with random access.
	var enumerated []*DB
	d.EachRepair(func(r []Fact) bool {
		enumerated = append(enumerated, RepairDB(r))
		return true
	})
	for i := int64(0); i < total.Int64(); i++ {
		r, err := d.RepairAt(big.NewInt(i))
		if err != nil {
			t.Fatal(err)
		}
		if !RepairDB(r).Equal(enumerated[i]) {
			t.Errorf("RepairAt(%d) disagrees with enumeration order", i)
		}
	}
	if _, err := d.RepairAt(big.NewInt(-1)); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := d.RepairAt(total); err == nil {
		t.Error("index == NumRepairs must fail")
	}
	// Empty database: single empty repair at index 0.
	empty := New()
	r, err := empty.RepairAt(big.NewInt(0))
	if err != nil || len(r) != 0 {
		t.Errorf("empty RepairAt: %v %v", r, err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := conferenceDB()
	var buf strings.Builder
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Error("snapshot round trip changed the database")
	}
	if got.NumBlocks() != d.NumBlocks() {
		t.Error("indexes not rebuilt")
	}
	// Corrupt input fails cleanly.
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage must be rejected")
	}
	// Empty database round-trips.
	var empty strings.Builder
	if err := New().WriteSnapshot(&empty); err != nil {
		t.Fatal(err)
	}
	e, err := ReadSnapshot(strings.NewReader(empty.String()))
	if err != nil || e.Len() != 0 {
		t.Errorf("empty snapshot: %v %v", e, err)
	}
}

func TestRemove(t *testing.T) {
	d := conferenceDB()
	if !d.Remove(NewFact("C", 2, "PODS", "2016", "Paris")) {
		t.Fatal("fact should be present")
	}
	if d.Remove(NewFact("C", 2, "PODS", "2016", "Paris")) {
		t.Error("double remove should report false")
	}
	if d.Len() != 5 || d.NumBlocks() != 4 {
		t.Errorf("after remove: %d facts, %d blocks", d.Len(), d.NumBlocks())
	}
	if d.NumRepairs().Cmp(big.NewInt(2)) != 0 {
		t.Errorf("repairs = %v", d.NumRepairs())
	}
	// Indexes rebuilt: block lookups still work.
	if len(d.Block(NewFact("C", 2, "PODS", "2016", "x"))) != 1 {
		t.Error("block index stale")
	}
	// Removing the last fact of a block drops the block.
	if n := d.RemoveBlock(NewFact("R", 1, "KDD", "x")); n != 2 {
		t.Errorf("RemoveBlock = %d", n)
	}
	if d.NumBlocks() != 3 {
		t.Errorf("blocks = %d", d.NumBlocks())
	}
	if n := d.RemoveBlock(NewFact("Z", 1, "none")); n != 0 {
		t.Errorf("missing block removal = %d", n)
	}
	// Signature bookkeeping: after removing all R facts, R can be re-added
	// with any signature? We keep the conservative behavior: signatures
	// persist only through facts, so a fully removed relation resets.
	d2 := MustParse("R(a | b)")
	d2.Remove(NewFact("R", 1, "a", "b"))
	if err := d2.Add(NewFact("R", 2, "a", "b", "c")); err != nil {
		t.Errorf("signature should reset after full removal: %v", err)
	}
}
