package db

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestDigestOfUnit pins the composed-digest contract the serving layer's
// verdict cache depends on: relation-scoped, order-independent,
// duplicate-insensitive, and distinguishing "relation absent" from
// "relation ignored".
func TestDigestOfUnit(t *testing.T) {
	d := MustParse("R(a | b) R(a | c) S(s | u)")

	if got, want := d.DigestOf([]string{"R", "S"}), d.DigestOf([]string{"S", "R"}); got != want {
		t.Errorf("DigestOf is order-dependent: %q vs %q", got, want)
	}
	if got, want := d.DigestOf([]string{"R", "R", "S"}), d.DigestOf([]string{"R", "S"}); got != want {
		t.Errorf("DigestOf counts duplicates: %q vs %q", got, want)
	}
	if got, want := d.DigestOf([]string{"R"}), d.DigestOf([]string{"S"}); got == want {
		t.Errorf("DigestOf(R) == DigestOf(S) = %q; different relations must differ", got)
	}
	// A relation the db has never seen must still mark its absence: a
	// query over {R, X} cannot share a cache entry with one over {R}.
	if got, want := d.DigestOf([]string{"R", "X"}), d.DigestOf([]string{"R"}); got == want {
		t.Errorf("DigestOf ignores absent relations: %q", got)
	}
	// Two different absent relations are also distinct subsets.
	if got, want := d.DigestOf([]string{"X"}), d.DigestOf([]string{"Y"}); got == want {
		t.Errorf("DigestOf(X) == DigestOf(Y) = %q for absent X, Y", got)
	}

	// Mutating S moves DigestOf(S) and DigestOf(R, S) but not DigestOf(R).
	onlyR, both := d.DigestOf([]string{"R"}), d.DigestOf([]string{"R", "S"})
	if err := d.Add(Fact{Rel: "S", KeyLen: 1, Args: []string{"s2", "u2"}}); err != nil {
		t.Fatal(err)
	}
	if got := d.DigestOf([]string{"R"}); got != onlyR {
		t.Errorf("DigestOf(R) moved on an S-only mutation: %q -> %q", onlyR, got)
	}
	if got := d.DigestOf([]string{"R", "S"}); got == both {
		t.Errorf("DigestOf(R, S) did not move on an S mutation: %q", got)
	}
}

// TestIncrementalIndexMatchesRebuilt is the differential guard for the
// copy-on-write index maintenance: a database mutated in place (Add and
// Remove in random interleavings) must be indistinguishable — facts,
// blocks, postings, and every digest flavor — from one rebuilt from
// scratch out of its surviving facts.
func TestIncrementalIndexMatchesRebuilt(t *testing.T) {
	rels := []string{"R", "S", "U"}
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(9001 + seed))
		d := New()
		model := map[string]Fact{}

		randomFact := func() Fact {
			v := func() string { return fmt.Sprintf("v%d", r.Intn(4)) }
			return Fact{Rel: rels[r.Intn(len(rels))], KeyLen: 1, Args: []string{v(), v()}}
		}

		for step := 0; step < 40; step++ {
			if r.Intn(3) > 0 || len(model) == 0 {
				f := randomFact()
				if _, dup := model[f.ID()]; dup {
					continue
				}
				if err := d.Add(f); err != nil {
					t.Fatalf("seed %d step %d: Add(%v): %v", seed, step, f, err)
				}
				model[f.ID()] = f
			} else {
				ids := make([]string, 0, len(model))
				for id := range model {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				f := model[ids[r.Intn(len(ids))]]
				if !d.Remove(f) {
					t.Fatalf("seed %d step %d: Remove(%v) = false for a present fact", seed, step, f)
				}
				delete(model, f.ID())
			}

			rebuilt := New()
			ids := make([]string, 0, len(model))
			for id := range model {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				if err := rebuilt.Add(model[id]); err != nil {
					t.Fatalf("rebuild: %v", err)
				}
			}

			if !d.Equal(rebuilt) {
				t.Fatalf("seed %d step %d: incremental db != rebuilt db\nincremental: %s\nrebuilt: %s",
					seed, step, d, rebuilt)
			}
			if got, want := d.Digest(), rebuilt.Digest(); got != want {
				t.Fatalf("seed %d step %d: Digest %q != rebuilt %q", seed, step, got, want)
			}
			for _, rel := range rels {
				if got, want := d.RelationDigest(rel), rebuilt.RelationDigest(rel); got != want {
					t.Fatalf("seed %d step %d: RelationDigest(%s) %q != rebuilt %q", seed, step, rel, got, want)
				}
				if got, want := d.RelationSize(rel), rebuilt.RelationSize(rel); got != want {
					t.Fatalf("seed %d step %d: RelationSize(%s) %d != rebuilt %d", seed, step, rel, got, want)
				}
				if got, want := len(d.BlocksOf(rel)), len(rebuilt.BlocksOf(rel)); got != want {
					t.Fatalf("seed %d step %d: BlocksOf(%s) %d blocks != rebuilt %d", seed, step, rel, got, want)
				}
			}
			if got, want := d.DigestOf(rels), rebuilt.DigestOf(rels); got != want {
				t.Fatalf("seed %d step %d: DigestOf %q != rebuilt %q", seed, step, got, want)
			}
			// Postings spot check: every surviving fact is findable by
			// (rel, position, value) in both.
			for _, id := range ids {
				f := model[id]
				for pos, val := range f.Args {
					got := d.FactsAt(f.Rel, pos, val)
					want := rebuilt.FactsAt(f.Rel, pos, val)
					if len(got) != len(want) {
						t.Fatalf("seed %d step %d: FactsAt(%s, %d, %s) = %d facts, rebuilt %d",
							seed, step, f.Rel, pos, val, len(got), len(want))
					}
				}
			}
			if !reflect.DeepEqual(d.Relations(), rebuilt.Relations()) {
				t.Fatalf("seed %d step %d: Relations %v != rebuilt %v", seed, step, d.Relations(), rebuilt.Relations())
			}
		}
	}
}
