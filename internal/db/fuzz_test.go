package db

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDB checks that the database text parser never panics and that
// whatever it accepts round-trips through String as the same fact set.
func FuzzParseDB(f *testing.F) {
	seeds := []string{
		"C(PODS, 2016 | Rome)\nC(PODS, 2016 | Paris)\nR(PODS | A)",
		"R(a | b), R(a | c), S(b | d)",
		"R('quo\\'ted', 'a\\\\b' | x)",
		"R('line\\\nbreak' | x)",
		"N(1, -2 | 3.5)",
		"R(a | b)\nR(a, b | c)", // duplicate relation, conflicting signature
		"R(a)\nR(a | b)",        // duplicate relation, conflicting key length
		"R(\x00 | b)",           // NUL byte
		"# comment only",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input)
		if err != nil {
			return
		}
		if strings.IndexByte(input, 0) >= 0 {
			t.Fatalf("accepted input containing a NUL byte")
		}
		rendered := d.String()
		d2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, rendered, err)
		}
		if !d.Equal(d2) {
			t.Fatalf("round trip changed database: %q -> %q", input, rendered)
		}
	})
}

// FuzzReadSnapshot checks that the binary snapshot decoder survives
// arbitrary bytes (no panics, no unbounded allocation) and that whatever it
// accepts round-trips through WriteSnapshot.
func FuzzReadSnapshot(f *testing.F) {
	sample := MustParse("C(PODS, 2016 | Rome)\nC(PODS, 2016 | Paris)\nR(PODS | A)")
	var buf bytes.Buffer
	if err := sample.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a snapshot"))
	if len(valid) > 4 {
		f.Add(valid[:len(valid)/2])           // truncated
		f.Add(append([]byte{0xff}, valid...)) // corrupted prefix
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := d.WriteSnapshot(&out); err != nil {
			t.Fatalf("accepted %d bytes but cannot re-encode: %v", len(data), err)
		}
		d2, err := ReadSnapshot(&out)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !d.Equal(d2) {
			t.Fatal("snapshot round trip changed the database")
		}
		// Adversarial snapshots that decode must also build a consistent
		// interned view with stable ids across the re-decode.
		in, in2 := d.Interned(), d2.Interned()
		if in.Syms.Len() != in2.Syms.Len() {
			t.Fatalf("interned symbol count diverged: %d vs %d", in.Syms.Len(), in2.Syms.Len())
		}
		for id := 0; id < in.Syms.Len(); id++ {
			if in.Syms.MustString(uint32(id)) != in2.Syms.MustString(uint32(id)) {
				t.Fatalf("interned id %d diverged across snapshot round trip", id)
			}
		}
	})
}
