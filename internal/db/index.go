package db

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/cqa-go/certainty/internal/obs"
)

// Index telemetry, recorded into the process-wide registry. Handles are
// resolved once at init, so the hot path pays one atomic add per (rare)
// build/invalidation — reads of a memoized index record nothing.
var (
	indexBuilds        = obs.Default.Counter("db_index_builds_total")
	indexInvalidations = obs.Default.Counter("db_index_invalidations_total")
	digestComputations = obs.Default.Counter("db_digest_computations_total")
	indexBuildSeconds  = obs.Default.Histogram("db_index_build_seconds", nil)
)

func init() {
	obs.Default.Help("db_index_builds_total", "Structural index builds (first use after mutation).")
	obs.Default.Help("db_index_invalidations_total", "Structural index invalidations caused by mutations.")
	obs.Default.Help("db_digest_computations_total", "Content digest computations over the fact set.")
	obs.Default.Help("db_index_build_seconds", "Wall-clock time to build the structural index.")
}

// dbIndex is the lazily built, immutable structural view of a DB that the
// solver hot paths consult instead of re-deriving per call:
//
//   - relFacts: relation → its facts in insertion order, as a single shared
//     slice (FactsOf copies on every call; the index pays the copy once).
//   - relBlocks: relation → its blocks in first-insertion order (the list
//     blocksOf used to rebuild from a map on every recursive step of the
//     Theorem 1 rewriting).
//   - blockFacts: block ID → the block's facts as a shared slice (Block
//     copies on every call).
//   - postings: (relation, argument position, value) → the facts carrying
//     that value at that position, in insertion order. Embedding search uses
//     these to narrow candidate scans when any atom position is determined,
//     not just the full primary key.
//   - digest: a content digest of the fact set (order-independent), used by
//     the serving layer to key verdict caches.
//
// The index is built at most once per DB content under DB.mu and then read
// without locks; every slice is shared and must be treated as immutable.
// Mutations (Add, Remove, RemoveBlock) invalidate the index, so derived
// structure can never go stale.
type dbIndex struct {
	relFacts   map[string][]Fact
	relBlocks  map[string][][]Fact
	blockFacts map[string][]Fact
	postings   map[string][]Fact
	digest     string
}

// postingKey encodes (relation, position, value) unambiguously; NUL is safe
// as a separator because Validate rejects NUL bytes in relation names and
// arguments.
func postingKey(rel string, pos int, value string) string {
	var b strings.Builder
	b.Grow(len(rel) + len(value) + 8)
	b.WriteString(rel)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(pos))
	b.WriteByte(0)
	b.WriteString(value)
	return b.String()
}

// index returns the memoized structural index, building it on first use.
func (d *DB) index() *dbIndex {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.idx == nil {
		d.idx = d.buildIndex()
	}
	return d.idx
}

// invalidate drops the memoized index; callers mutate d afterwards.
func (d *DB) invalidate() {
	d.mu.Lock()
	if d.idx != nil {
		indexInvalidations.Inc()
	}
	d.idx = nil
	d.mu.Unlock()
}

func (d *DB) buildIndex() *dbIndex {
	start := time.Now()
	ix := &dbIndex{
		relFacts:   make(map[string][]Fact, len(d.rels)),
		relBlocks:  make(map[string][][]Fact, len(d.rels)),
		blockFacts: make(map[string][]Fact, len(d.blockOrder)),
		postings:   make(map[string][]Fact),
	}
	for rel, idxs := range d.rels {
		fs := make([]Fact, len(idxs))
		for i, idx := range idxs {
			fs[i] = d.facts[idx]
		}
		ix.relFacts[rel] = fs
	}
	for _, bid := range d.blockOrder {
		idxs := d.blocks[bid]
		blk := make([]Fact, len(idxs))
		for i, idx := range idxs {
			blk[i] = d.facts[idx]
		}
		ix.blockFacts[bid] = blk
		rel := blk[0].Rel
		ix.relBlocks[rel] = append(ix.relBlocks[rel], blk)
	}
	for _, f := range d.facts {
		for pos, v := range f.Args {
			key := postingKey(f.Rel, pos, v)
			ix.postings[key] = append(ix.postings[key], f)
		}
	}
	ix.digest = computeDigest(d.facts)
	indexBuilds.Inc()
	indexBuildSeconds.Observe(time.Since(start).Seconds())
	return ix
}

// computeDigest hashes the fact set order-independently: each fact is
// rendered as its length-prefixed canonical encoding (including the key
// length, which Fact.ID omits), the encodings are sorted, and the sorted
// sequence is hashed with per-entry length prefixes so concatenation is
// unambiguous.
func computeDigest(facts []Fact) string {
	digestComputations.Inc()
	enc := make([]string, len(facts))
	for i, f := range facts {
		var b strings.Builder
		b.WriteString(strconv.Itoa(f.KeyLen))
		b.WriteByte('|')
		b.WriteString(f.ID())
		enc[i] = b.String()
	}
	sort.Strings(enc)
	h := sha256.New()
	var lenBuf [16]byte
	for _, e := range enc {
		n := strconv.AppendInt(lenBuf[:0], int64(len(e)), 10)
		h.Write(n)
		h.Write([]byte{':'})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Digest returns a content digest of the database: two databases have equal
// digests iff they contain the same set of facts (up to SHA-256 collision),
// regardless of insertion order. Memoized with the structural index; the
// serving layer uses it to key verdict caches.
func (d *DB) Digest() string { return d.index().digest }

// RelationFacts returns the facts of the given relation in insertion order
// as a shared slice. The caller must not modify it; use FactsOf for an
// owned copy. Memoized: repeated calls return the same backing array until
// the database is mutated.
func (d *DB) RelationFacts(rel string) []Fact { return d.index().relFacts[rel] }

// RelationSize returns the number of facts of the given relation without
// materializing them.
func (d *DB) RelationSize(rel string) int { return len(d.rels[rel]) }

// BlocksOf returns the blocks of the given relation in first-insertion
// order, as shared slices the caller must not modify. This is the memoized
// form of the per-call block-list derivation the Theorem 1 rewriting used
// to perform on every recursive step.
func (d *DB) BlocksOf(rel string) [][]Fact { return d.index().relBlocks[rel] }

// BlockView returns the block of the given fact as a shared slice the
// caller must not modify; use Block for an owned copy.
func (d *DB) BlockView(f Fact) []Fact { return d.index().blockFacts[f.BlockID()] }

// FactsAt returns the facts of rel whose argument at position pos equals
// value, in insertion order, as a shared slice the caller must not modify.
// It returns nil when pos is out of range for the relation's arity. This is
// the per-(relation, position) posting-list index consulted by embedding
// search when an atom has any determined position short of its full key.
func (d *DB) FactsAt(rel string, pos int, value string) []Fact {
	return d.index().postings[postingKey(rel, pos, value)]
}
