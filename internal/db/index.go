package db

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/obs"
)

// Index telemetry, recorded into the process-wide registry. Handles are
// resolved once at init, so the hot path pays one atomic add per (rare)
// build/invalidation — reads of memoized structure record nothing.
var (
	indexBuilds        = obs.Default.Counter("db_index_builds_total")
	indexInvalidations = obs.Default.Counter("db_index_invalidations_total")
	digestComputations = obs.Default.Counter("db_digest_computations_total")
)

func init() {
	obs.Default.Help("db_index_builds_total", "Per-relation posting-list index builds (first use after mutation).")
	obs.Default.Help("db_index_invalidations_total", "Copy-on-write relation privatizations caused by mutations.")
	obs.Default.Help("db_digest_computations_total", "Relation digest compositions over per-block digests.")
}

// The structural index is maintained per relation (see relation.go): each
// relation lazily builds and memoizes its posting lists, block list, and
// content digests, and mutations invalidate only the relation they touch.
// The accessors below are the read surface the solver hot paths consult:
//
//   - RelationFacts: relation → its facts in insertion order as one shared
//     slice (FactsOf copies on every call; the relation pays the copy never —
//     the slice IS the storage).
//   - BlocksOf: relation → its blocks in first-insertion order.
//   - BlockView: block ID → the block's facts as a shared slice.
//   - FactsAt: (relation, argument position, value) → the facts carrying
//     that value at that position, in insertion order. Embedding search uses
//     these to narrow candidate scans when any atom position is determined,
//     not just the full primary key.
//   - Digest / RelationDigest / DigestOf: content digests composed from
//     per-block digests, used by the serving layer to key verdict caches at
//     relation granularity so a mutation invalidates only the cache entries
//     whose queries read the touched relation.
//
// Every returned slice is shared and must be treated as immutable.

// computeDigest hashes a fact set order-independently: each fact is
// rendered as its length-prefixed canonical encoding (including the key
// length, which Fact.ID omits), the encodings are sorted, and the sorted
// sequence is hashed with per-entry length prefixes so concatenation is
// unambiguous.
func computeDigest(facts []Fact) string {
	enc := make([]string, len(facts))
	for i, f := range facts {
		var b strings.Builder
		b.WriteString(strconv.Itoa(f.KeyLen))
		b.WriteByte('|')
		b.WriteString(f.ID())
		enc[i] = b.String()
	}
	sort.Strings(enc)
	return hashParts(enc)
}

// HashParts is the digest composition used throughout the index — a
// SHA-256 over length-prefixed parts — exported so higher layers (the shard
// fingerprints of internal/shard) compose their content addresses from the
// same primitive and inherit its collision resistance.
func HashParts(parts []string) string { return hashParts(parts) }

// hashParts hashes a sequence of strings with per-entry length prefixes so
// concatenation is unambiguous, returning the hex digest.
func hashParts(parts []string) string {
	h := sha256.New()
	var lenBuf [16]byte
	for _, e := range parts {
		n := strconv.AppendInt(lenBuf[:0], int64(len(e)), 10)
		h.Write(n)
		h.Write([]byte{':'})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Digest returns a content digest of the database: two databases have equal
// digests iff they contain the same set of facts (up to SHA-256 collision),
// regardless of insertion order. The digest is composed from the memoized
// per-relation digests — which are themselves composed from per-block
// digests — so after a mutation only the touched block is re-hashed, the
// touched relation re-composed, and this root re-composed; untouched
// relations contribute their memoized digests unchanged.
func (d *DB) Digest() string {
	d.mu.Lock()
	if d.root != "" {
		root := d.root
		d.mu.Unlock()
		return root
	}
	d.mu.Unlock()
	names := d.Relations()
	parts := make([]string, 0, 2*len(names))
	for _, name := range names {
		parts = append(parts, name, d.rels[name].digestOf())
	}
	root := hashParts(parts)
	d.mu.Lock()
	d.root = root
	d.mu.Unlock()
	return root
}

// RelationDigest returns the content digest of one relation's facts, or ""
// when the relation is absent. Two databases whose relation digests for rel
// coincide contain the same facts for rel.
func (d *DB) RelationDigest(rel string) string {
	r, ok := d.rels[rel]
	if !ok {
		return ""
	}
	return r.digestOf()
}

// DigestOf returns a content digest over the named relations only: it is
// determined exactly by the facts of those relations (absent relations
// participate as explicit empty markers, so "absent" and "never mentioned"
// compose differently). The serving layer keys verdict caches on
// DigestOf(query's relations): a mutation then invalidates only the cached
// verdicts whose queries read the touched relation, instead of every
// verdict in the cache.
func (d *DB) DigestOf(rels []string) string {
	names := append([]string(nil), rels...)
	sort.Strings(names)
	parts := make([]string, 0, 2*len(names))
	for i, name := range names {
		if i > 0 && names[i-1] == name {
			continue // deduplicate
		}
		parts = append(parts, name, d.RelationDigest(name))
	}
	return hashParts(parts)
}

// BlockDigests returns rel's per-block content digests keyed by
// Fact.BlockID, or nil when the relation is absent. The map is built and
// memoized on first use; after that, a mutation re-hashes only the block it
// touches. Two blocks have equal digests iff they hold the same fact set
// (up to SHA-256 collision), regardless of insertion order — this is the
// primitive the shard fingerprints of delta re-solve are composed from.
// The returned map is shared and must be treated as read-only; read it only
// from databases that are not being concurrently mutated (published
// snapshots are immutable and always safe).
func (d *DB) BlockDigests(rel string) map[string]string {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	return r.blockDigestsOf()
}

// RelationFacts returns the facts of the given relation in insertion order
// as a shared slice. The caller must not modify it; use FactsOf for an
// owned copy. Stable: repeated calls return the same backing array until
// the relation is mutated.
func (d *DB) RelationFacts(rel string) []Fact {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	return r.facts
}

// RelationSize returns the number of facts of the given relation without
// materializing them.
func (d *DB) RelationSize(rel string) int {
	r, ok := d.rels[rel]
	if !ok {
		return 0
	}
	return len(r.facts)
}

// BlocksOf returns the blocks of the given relation in first-insertion
// order, as shared slices the caller must not modify. Memoized per
// relation; a mutation of another relation leaves it untouched.
func (d *DB) BlocksOf(rel string) [][]Fact {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	return r.blockListOf()
}

// BlockView returns the block of the given fact as a shared slice the
// caller must not modify; use Block for an owned copy.
func (d *DB) BlockView(f Fact) []Fact {
	r, ok := d.rels[f.Rel]
	if !ok {
		return nil
	}
	return r.blocks[f.BlockID()]
}

// FactsAt returns the facts of rel whose argument at position pos equals
// value, in insertion order, as a shared slice the caller must not modify.
// It returns nil when pos is out of range for the relation's arity. This is
// the per-(relation, position) posting-list index consulted by embedding
// search when an atom has any determined position short of its full key.
func (d *DB) FactsAt(rel string, pos int, value string) []Fact {
	r, ok := d.rels[rel]
	if !ok {
		return nil
	}
	return r.postingsOf()[postingKey(pos, value)]
}
