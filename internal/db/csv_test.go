package db

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	d := New()
	input := "PODS,2016,Rome\nPODS,2016,Paris\nKDD,2017,Rome\n"
	if err := d.ReadCSV("C", 2, strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadCSV("R", 1, strings.NewReader("PODS,A\nKDD,A\nKDD,B\n")); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 || d.NumBlocks() != 4 {
		t.Errorf("loaded %d facts, %d blocks", d.Len(), d.NumBlocks())
	}
	if !d.Has(NewFact("C", 2, "PODS", "2016", "Paris")) {
		t.Error("missing fact")
	}
}

func TestReadCSVQuotedAndDuplicates(t *testing.T) {
	d := New()
	input := "\"a,b\",\"it\"\"s\"\nx,y\nx,y\n"
	if err := d.ReadCSV("R", 1, strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("duplicates must collapse: %d", d.Len())
	}
	if !d.Has(NewFact("R", 1, "a,b", `it"s`)) {
		t.Error("quoted fields mishandled")
	}
}

func TestReadCSVErrors(t *testing.T) {
	d := New()
	if err := d.ReadCSV("R", 3, strings.NewReader("a,b\n")); err == nil {
		t.Error("key length beyond width must fail")
	}
	if err := d.ReadCSV("R", 0, strings.NewReader("a,b\n")); err == nil {
		t.Error("zero key length must fail")
	}
	d2 := New()
	if err := d2.ReadCSV("R", 1, strings.NewReader("a,b\nc\n")); err == nil {
		t.Error("ragged rows must fail")
	}
	d3 := New()
	d3.Add(NewFact("R", 2, "a", "b", "c"))
	if err := d3.ReadCSV("R", 1, strings.NewReader("x,y\n")); err == nil {
		t.Error("signature conflict must fail")
	}
	// Empty input is fine.
	if err := New().ReadCSV("R", 1, strings.NewReader("")); err != nil {
		t.Errorf("empty csv: %v", err)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	d := New()
	d.Add(NewFact("R", 1, "b", "2"))
	d.Add(NewFact("R", 1, "a", "1"))
	d.Add(NewFact("R", 1, "a,x", `q"q`))
	var b strings.Builder
	if err := d.WriteCSV("R", &b); err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.ReadCSV("R", 1, strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip failed:\n%s\nvs\n%s", d, d2)
	}
	// Deterministic (sorted) output.
	if !strings.HasPrefix(b.String(), "a,1\n") {
		t.Errorf("output not sorted: %q", b.String())
	}
}
