package db

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/cqa-go/certainty/internal/govern"
)

// snapshot is the serialized form of a database. Facts are stored once;
// indexes are rebuilt on load.
type snapshot struct {
	Version int
	Facts   []Fact
}

const snapshotVersion = 1

// WriteSnapshot serializes the database in a binary format (encoding/gob)
// suitable for fast save/restore of large instances. The text format
// (String/Parse) remains the interchange format.
func (d *DB) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(snapshot{Version: snapshotVersion, Facts: d.facts}); err != nil {
		return fmt.Errorf("db: snapshot encode: %w", err)
	}
	return bw.Flush()
}

// MaxSnapshotBytes bounds how much input ReadSnapshot will consume, so a
// truncated-length or endless adversarial stream cannot exhaust memory.
const MaxSnapshotBytes = 1 << 30

// ReadSnapshot deserializes a database written by WriteSnapshot.
//
// The decode path is hardened for untrusted input: it reads at most
// MaxSnapshotBytes, contains any decoder panic as an error, and validates
// every fact (arity cap, NUL bytes, signature conflicts) before it enters
// the database.
func ReadSnapshot(r io.Reader) (*DB, error) {
	var s snapshot
	dec := gob.NewDecoder(bufio.NewReader(io.LimitReader(r, MaxSnapshotBytes)))
	if err := govern.Safe(func() error { return dec.Decode(&s) }); err != nil {
		return nil, fmt.Errorf("db: snapshot decode: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("db: unsupported snapshot version %d", s.Version)
	}
	out := New()
	for _, f := range s.Facts {
		if err := out.Add(f); err != nil {
			return nil, fmt.Errorf("db: snapshot contains invalid fact: %w", err)
		}
	}
	return out, nil
}
