package db

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialized form of a database. Facts are stored once;
// indexes are rebuilt on load.
type snapshot struct {
	Version int
	Facts   []Fact
}

const snapshotVersion = 1

// WriteSnapshot serializes the database in a binary format (encoding/gob)
// suitable for fast save/restore of large instances. The text format
// (String/Parse) remains the interchange format.
func (d *DB) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(snapshot{Version: snapshotVersion, Facts: d.facts}); err != nil {
		return fmt.Errorf("db: snapshot encode: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a database written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*DB, error) {
	var s snapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&s); err != nil {
		return nil, fmt.Errorf("db: snapshot decode: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("db: unsupported snapshot version %d", s.Version)
	}
	out := New()
	for _, f := range s.Facts {
		if err := out.Add(f); err != nil {
			return nil, fmt.Errorf("db: snapshot contains invalid fact: %w", err)
		}
	}
	return out, nil
}
