package db

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// relation holds one relation's facts and derived structure. Relations are
// the copy-on-write unit of the database: Clone marks every relation shared,
// and a mutation of a shared relation first produces a private deep copy, so
// a mutation touches only the structures of the relation it changes — every
// other relation (facts, blocks, postings, digests) is carried over by
// pointer. This is what makes invalidation incremental: writing one fact no
// longer discards the whole database's index and content digest, only the
// touched relation's lazy parts (and, within it, only the touched block's
// digest is recomputed).
//
// Core fields (sig, facts, ids, blocks, blockOrder) are maintained eagerly
// on every mutation. Lazy fields (postings, blockList, blockDigests,
// digest) are built on first use under imu and then read without locks;
// once a relation is shared it is immutable, so the memoized parts stay
// valid forever.
type relation struct {
	sig        [2]int
	facts      []Fact            // insertion order
	ids        map[string]int    // Fact.ID() → index into facts
	blocks     map[string][]Fact // Fact.BlockID() → facts, insertion order
	blockOrder []string          // block IDs in first-insertion order

	// shared is set when a second database gains a reference to this
	// struct (Clone). A shared relation must never be mutated in place.
	shared atomic.Bool

	imu          sync.Mutex
	postings     map[string][]Fact // lazily built: (pos, value) → facts
	blockList    [][]Fact          // lazily built: blocks in first-insertion order
	blockDigests map[string]string // block ID → content digest; incrementally maintained
	digest       string            // composed relation digest; "" until composed
}

func newRelation(sig [2]int) *relation {
	return &relation{
		sig:    sig,
		ids:    make(map[string]int),
		blocks: make(map[string][]Fact),
	}
}

// postingKey encodes (argument position, value) unambiguously within one
// relation; NUL is safe as a separator because Validate rejects NUL bytes
// in arguments.
func postingKey(pos int, value string) string {
	var b strings.Builder
	b.Grow(len(value) + 4)
	b.WriteString(strconv.Itoa(pos))
	b.WriteByte(0)
	b.WriteString(value)
	return b.String()
}

// mutable returns a relation that may be updated in place: r itself when it
// is exclusively owned, otherwise a private deep copy of the core fields.
// The copy drops the lazily built postings and block list (they rebuild on
// demand, scoped to this relation) but carries the per-block digests over —
// the mutation recomputes only the digest of the block it touches.
func (r *relation) mutable() *relation {
	if !r.shared.Load() {
		return r
	}
	indexInvalidations.Inc()
	c := &relation{
		sig:        r.sig,
		facts:      append(make([]Fact, 0, len(r.facts)+1), r.facts...),
		ids:        make(map[string]int, len(r.ids)+1),
		blocks:     make(map[string][]Fact, len(r.blocks)+1),
		blockOrder: append([]string(nil), r.blockOrder...),
	}
	for k, v := range r.ids {
		c.ids[k] = v
	}
	for k, v := range r.blocks {
		c.blocks[k] = append(make([]Fact, 0, len(v)), v...)
	}
	r.imu.Lock()
	if r.blockDigests != nil {
		c.blockDigests = make(map[string]string, len(r.blockDigests))
		for k, v := range r.blockDigests {
			c.blockDigests[k] = v
		}
	}
	r.imu.Unlock()
	return c
}

// insert adds a fact known to be absent, updating the core structures
// eagerly and the lazy structures incrementally where they exist. Must only
// be called on an exclusively owned relation (after mutable).
func (r *relation) insert(f Fact) {
	idx := len(r.facts)
	r.facts = append(r.facts, f)
	r.ids[f.ID()] = idx
	bid := f.BlockID()
	blk, existed := r.blocks[bid]
	if !existed {
		r.blockOrder = append(r.blockOrder, bid)
	}
	r.blocks[bid] = append(blk, f)
	r.imu.Lock()
	if r.postings != nil {
		for pos, v := range f.Args {
			key := postingKey(pos, v)
			r.postings[key] = append(r.postings[key], f)
		}
	}
	r.blockList = nil // order-preserving rebuild is cheap and rare
	if r.blockDigests != nil {
		r.blockDigests[bid] = computeDigest(r.blocks[bid])
	}
	r.digest = ""
	r.imu.Unlock()
}

// remove deletes the fact at r.ids[f.ID()], which must exist. Must only be
// called on an exclusively owned relation. Reports whether the fact's block
// became empty.
func (r *relation) remove(f Fact) (blockEmptied bool) {
	id := f.ID()
	idx := r.ids[id]
	copy(r.facts[idx:], r.facts[idx+1:])
	r.facts = r.facts[:len(r.facts)-1]
	delete(r.ids, id)
	for gid, gi := range r.ids {
		if gi > idx {
			r.ids[gid] = gi - 1
		}
	}
	bid := f.BlockID()
	blk := r.blocks[bid]
	kept := blk[:0]
	for _, g := range blk {
		if !g.Equal(f) {
			kept = append(kept, g)
		}
	}
	if len(kept) == 0 {
		delete(r.blocks, bid)
		for i, b := range r.blockOrder {
			if b == bid {
				r.blockOrder = append(r.blockOrder[:i], r.blockOrder[i+1:]...)
				break
			}
		}
		blockEmptied = true
	} else {
		r.blocks[bid] = kept
	}
	r.imu.Lock()
	if r.postings != nil {
		for pos, v := range f.Args {
			key := postingKey(pos, v)
			list := r.postings[key]
			keptP := list[:0]
			for _, g := range list {
				if !g.Equal(f) {
					keptP = append(keptP, g)
				}
			}
			if len(keptP) == 0 {
				delete(r.postings, key)
			} else {
				r.postings[key] = keptP
			}
		}
	}
	r.blockList = nil
	if r.blockDigests != nil {
		if blockEmptied {
			delete(r.blockDigests, bid)
		} else {
			r.blockDigests[bid] = computeDigest(r.blocks[bid])
		}
	}
	r.digest = ""
	r.imu.Unlock()
	return blockEmptied
}

// postingsOf returns the lazily built (position, value) posting lists.
func (r *relation) postingsOf() map[string][]Fact {
	r.imu.Lock()
	defer r.imu.Unlock()
	if r.postings == nil {
		indexBuilds.Inc()
		r.postings = make(map[string][]Fact)
		for _, f := range r.facts {
			for pos, v := range f.Args {
				key := postingKey(pos, v)
				r.postings[key] = append(r.postings[key], f)
			}
		}
	}
	return r.postings
}

// blockListOf returns the relation's blocks in first-insertion order as a
// memoized slice of shared slices.
func (r *relation) blockListOf() [][]Fact {
	r.imu.Lock()
	defer r.imu.Unlock()
	if r.blockList == nil && len(r.blockOrder) > 0 {
		r.blockList = make([][]Fact, len(r.blockOrder))
		for i, bid := range r.blockOrder {
			r.blockList[i] = r.blocks[bid]
		}
	}
	return r.blockList
}

// blockDigestsLocked builds the per-block digest map on first use. The
// caller must hold imu. Once built, insert/remove maintain the map
// incrementally, so after a mutation only the touched block is re-hashed.
func (r *relation) blockDigestsLocked() map[string]string {
	if r.blockDigests == nil {
		r.blockDigests = make(map[string]string, len(r.blocks))
		for bid, blk := range r.blocks {
			r.blockDigests[bid] = computeDigest(blk)
		}
	}
	return r.blockDigests
}

// blockDigestsOf returns the memoized per-block content digests keyed by
// block ID. The returned map is the live memoized structure: callers must
// treat it as read-only and must not hold it across a mutation of this
// relation (the shard-fingerprint path reads it transiently off immutable
// published snapshots).
func (r *relation) blockDigestsOf() map[string]string {
	r.imu.Lock()
	defer r.imu.Unlock()
	return r.blockDigestsLocked()
}

// digestOf returns the relation's composed content digest: the hash of the
// sorted per-block digests. Block digests are maintained incrementally by
// insert/remove once first computed, so after a mutation only the touched
// block is re-hashed and the composition re-sorted.
func (r *relation) digestOf() string {
	r.imu.Lock()
	defer r.imu.Unlock()
	if r.digest != "" {
		return r.digest
	}
	digests := r.blockDigestsLocked()
	parts := make([]string, 0, len(digests))
	for _, dg := range digests {
		parts = append(parts, dg)
	}
	sort.Strings(parts)
	r.digest = hashParts(parts)
	digestComputations.Inc()
	return r.digest
}
