package db

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/govern"
)

// blockRef addresses one block globally: the relation holding it plus the
// block ID within it. The database keeps blocks in global first-insertion
// order through these references while the block contents live in the
// per-relation structures.
type blockRef struct {
	rel string
	bid string
}

// DB is an uncertain database: a finite set of facts. Facts are deduplicated
// and kept in insertion order for deterministic iteration. The zero value is
// not ready for use; call New.
//
// Storage is organized per relation (see relation.go): each relation owns
// its facts, blocks, posting lists, and content digests, and relations are
// the copy-on-write unit shared between a database and its clones. A
// mutation therefore touches only the relation (and within it, the block)
// it changes; every other relation's derived structure — including its
// memoized digest — survives untouched. The database-level content digest
// is composed from the per-relation digests on demand.
//
// Reads (including the lazily built per-relation index parts) are safe for
// concurrent use; mutations (Add, Remove, RemoveBlock) are not and must not
// race with reads of the same DB. Clones taken before a mutation are
// unaffected by it and stay safe to read.
type DB struct {
	facts      []Fact     // global insertion order
	blockOrder []blockRef // blocks in global first-insertion order
	rels       map[string]*relation

	mu   sync.Mutex // guards root
	root string     // memoized composed digest; "" until computed

	// interned memoizes the dense-id columnar view (see interned.go).
	// Built lazily, dropped on mutation, shared by clones (immutable).
	interned atomic.Pointer[Interned]
}

// New returns an empty uncertain database.
func New() *DB {
	return &DB{rels: make(map[string]*relation)}
}

// FromFacts returns a database containing the given facts.
func FromFacts(facts ...Fact) (*DB, error) {
	d := New()
	for _, f := range facts {
		if err := d.Add(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustFromFacts is FromFacts panicking on error, for tests and literals.
func MustFromFacts(facts ...Fact) *DB {
	d, err := FromFacts(facts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Add inserts a fact (idempotently). It rejects invalid facts and signature
// conflicts with previously inserted facts of the same relation.
func (d *DB) Add(f Fact) error {
	if err := f.Validate(); err != nil {
		return err
	}
	sig := [2]int{len(f.Args), f.KeyLen}
	if r, ok := d.rels[f.Rel]; ok && r.sig != sig {
		return fmt.Errorf("db: relation %s used with signatures [%d,%d] and [%d,%d]",
			f.Rel, r.sig[0], r.sig[1], sig[0], sig[1])
	}
	d.addValidated(f)
	return nil
}

// addValidated inserts a fact that is already known to be valid and
// signature-consistent with the database (facts coming from another DB that
// validated them on first insert). Skipping re-validation keeps derived
// databases (Restrict, WithoutBlock, RepairDB) off the per-fact error paths.
func (d *DB) addValidated(f Fact) {
	r, ok := d.rels[f.Rel]
	if !ok {
		r = newRelation([2]int{len(f.Args), f.KeyLen})
		d.rels[f.Rel] = r
	}
	if _, dup := r.ids[f.ID()]; dup {
		return
	}
	m := r.mutable()
	if m != r {
		d.rels[f.Rel] = m
	}
	bid := f.BlockID()
	if _, known := m.blocks[bid]; !known {
		d.blockOrder = append(d.blockOrder, blockRef{rel: f.Rel, bid: bid})
	}
	m.insert(f)
	d.facts = append(d.facts, f)
	d.resetRoot()
}

// resetRoot drops the memoized composed digest and the interned columnar
// view; per-relation digests are invalidated at the relation they belong
// to, not here.
func (d *DB) resetRoot() {
	d.mu.Lock()
	d.root = ""
	d.mu.Unlock()
	d.interned.Store(nil)
}

// Len returns the number of facts.
func (d *DB) Len() int { return len(d.facts) }

// Facts returns all facts in insertion order. The slice must not be
// modified.
func (d *DB) Facts() []Fact { return d.facts }

// Has reports whether the fact is present.
func (d *DB) Has(f Fact) bool {
	r, ok := d.rels[f.Rel]
	if !ok {
		return false
	}
	_, ok = r.ids[f.ID()]
	return ok
}

// Relations returns the relation names present, sorted.
func (d *DB) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for r := range d.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Signature returns the [arity, keyLen] signature of a relation present in
// the database.
func (d *DB) Signature(rel string) (arity, keyLen int, ok bool) {
	r, ok := d.rels[rel]
	if !ok {
		return 0, 0, false
	}
	return r.sig[0], r.sig[1], true
}

// FactsOf returns the facts of the given relation in insertion order.
func (d *DB) FactsOf(rel string) []Fact {
	r, ok := d.rels[rel]
	if !ok {
		return make([]Fact, 0)
	}
	out := make([]Fact, len(r.facts))
	copy(out, r.facts)
	return out
}

// Block returns the block of the given fact: all facts key-equal to it
// (including f itself if present).
func (d *DB) Block(f Fact) []Fact {
	r, ok := d.rels[f.Rel]
	if !ok {
		return make([]Fact, 0)
	}
	blk := r.blocks[f.BlockID()]
	out := make([]Fact, len(blk))
	copy(out, blk)
	return out
}

// Blocks returns all blocks in first-insertion order. Each block lists its
// facts in insertion order.
func (d *DB) Blocks() [][]Fact {
	out := make([][]Fact, 0, len(d.blockOrder))
	for _, ref := range d.blockOrder {
		blk := d.rels[ref.rel].blocks[ref.bid]
		cp := make([]Fact, len(blk))
		copy(cp, blk)
		out = append(out, cp)
	}
	return out
}

// NumBlocks returns the number of blocks.
func (d *DB) NumBlocks() int { return len(d.blockOrder) }

// IsConsistent reports whether every block is a singleton.
func (d *DB) IsConsistent() bool {
	for _, r := range d.rels {
		for _, blk := range r.blocks {
			if len(blk) > 1 {
				return false
			}
		}
	}
	return true
}

// ActiveDomain returns the sorted set of constants occurring in the
// database.
func (d *DB) ActiveDomain() []string {
	seen := make(map[string]struct{})
	for _, f := range d.facts {
		for _, a := range f.Args {
			seen[a] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of the database sharing fact values (facts are
// immutable by convention). The copy is structural and flat: the global
// fact and block-order slices are duplicated, while the per-relation
// structures — facts, blocks, posting lists, and digests — are shared by
// reference and marked copy-on-write. A later mutation of either database
// privatizes only the relation it touches, so a clone costs O(facts) for
// the flat slices but no re-hashing or re-indexing, and mutating one fact
// after a clone costs O(touched relation), not O(database).
func (d *DB) Clone() *DB {
	c := &DB{
		facts:      append([]Fact(nil), d.facts...),
		blockOrder: append([]blockRef(nil), d.blockOrder...),
		rels:       make(map[string]*relation, len(d.rels)),
	}
	for name, r := range d.rels {
		r.shared.Store(true)
		c.rels[name] = r
	}
	d.mu.Lock()
	c.root = d.root
	d.mu.Unlock()
	c.interned.Store(d.interned.Load()) // immutable snapshot, safe to share
	return c
}

// Restrict returns the sub-database containing only facts satisfying keep.
// Facts were validated on first insertion, so the copy skips re-validation.
func (d *DB) Restrict(keep func(Fact) bool) *DB {
	c := New()
	for _, f := range d.facts {
		if keep(f) {
			c.addValidated(f)
		}
	}
	return c
}

// PartitionFacts splits the database into n sub-databases in one validated
// pass: fact i goes to part label(i, f), and labels outside [0, n) drop the
// fact. Each part preserves the original insertion order, so partitions are
// deterministic for a given database and label function. The shard layer
// uses this to materialize all of a decomposition's sub-instances in O(facts)
// instead of one Restrict scan per shard.
func (d *DB) PartitionFacts(n int, label func(i int, f Fact) int) []*DB {
	parts := make([]*DB, n)
	for i := range parts {
		parts[i] = New()
	}
	for i, f := range d.facts {
		if g := label(i, f); g >= 0 && g < n {
			parts[g].addValidated(f)
		}
	}
	return parts
}

// WithoutBlock returns the database with the entire block of f removed
// (Lemma 1's purification step removes whole blocks).
func (d *DB) WithoutBlock(f Fact) *DB {
	bid := f.BlockID()
	return d.Restrict(func(g Fact) bool { return g.BlockID() != bid })
}

// NumRepairs returns the number of repairs: the product of the block sizes
// (1 for the empty database, whose only repair is empty).
func (d *DB) NumRepairs() *big.Int {
	n := big.NewInt(1)
	for _, r := range d.rels {
		for _, blk := range r.blocks {
			n.Mul(n, big.NewInt(int64(len(blk))))
		}
	}
	return n
}

// EachRepair enumerates all repairs, invoking yield with each repair as a
// fact slice (one fact per block, in block order). Enumeration stops early
// if yield returns false. The slice passed to yield is reused across calls;
// copy it to retain. Returns false iff some yield returned false.
func (d *DB) EachRepair(yield func(repair []Fact) bool) bool {
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return yield(repair)
		}
		for _, f := range blocks[i] {
			repair[i] = f
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// EachRepairCtx is EachRepair with cooperative cancellation: one governor
// step is charged per repair yielded, and enumeration aborts with the
// governor's error on cancellation, deadline, or budget exhaustion. The
// bool result is false iff some yield returned false (as in EachRepair);
// it is unspecified when the error is non-nil.
func (d *DB) EachRepairCtx(ctx context.Context, yield func(repair []Fact) bool) (bool, error) {
	g := govern.From(ctx)
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(blocks) {
			if err := g.Step(); err != nil {
				return false, err
			}
			return yield(repair), nil
		}
		for _, f := range blocks[i] {
			repair[i] = f
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// RepairDB materializes a repair (as produced by EachRepair) into a
// consistent database. The facts must come from a valid database; they are
// not re-validated.
func RepairDB(repair []Fact) *DB {
	d := New()
	for _, f := range repair {
		d.addValidated(f)
	}
	return d
}

// Union returns a new database containing the facts of both inputs.
func Union(a, b *DB) (*DB, error) {
	c := New()
	for _, f := range a.Facts() {
		if err := c.Add(f); err != nil {
			return nil, err
		}
	}
	for _, f := range b.Facts() {
		if err := c.Add(f); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Parse reads a database in the textual format: one fact per line (or
// comma-separated), e.g.
//
//	C(PODS, 2016 | Rome)
//	C(PODS, 2016 | Paris)
//	R(PODS | A)
//
// Bare identifiers and numbers denote constants; quoted strings are also
// constants. Variables are not allowed in database files.
//
// Parse is hardened against adversarial input: NUL bytes are rejected up
// front, rows wider than MaxArity and signature conflicts between rows of
// the same relation are reported as errors, and no input can panic.
func Parse(input string) (*DB, error) {
	if i := strings.IndexByte(input, 0); i >= 0 {
		return nil, fmt.Errorf("db: input contains a NUL byte at offset %d", i)
	}
	q, err := cq.ParseQuery(input)
	if err != nil {
		return nil, err
	}
	d := New()
	for _, a := range q.Atoms {
		args := make([]string, len(a.Args))
		for i, t := range a.Args {
			args[i] = t.Value // identifiers are constants in database files
		}
		if err := d.Add(Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustParse is Parse panicking on error.
func MustParse(input string) *DB {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

// String renders the database with one fact per line, grouped by block in
// insertion order (blocks separated implicitly by key equality).
func (d *DB) String() string {
	var b strings.Builder
	for _, ref := range d.blockOrder {
		for _, f := range d.rels[ref.rel].blocks[ref.bid] {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Equal reports whether two databases contain the same set of facts.
func (d *DB) Equal(other *DB) bool {
	if d.Len() != other.Len() {
		return false
	}
	for _, f := range d.facts {
		if !other.Has(f) {
			return false
		}
	}
	return true
}

// RepairAt returns the repair with the given index in the mixed-radix
// enumeration order used by EachRepair (block insertion order, fact
// insertion order within a block). The index must lie in [0, NumRepairs).
// Useful for random access into astronomically large repair spaces.
func (d *DB) RepairAt(index *big.Int) ([]Fact, error) {
	if index.Sign() < 0 || index.Cmp(d.NumRepairs()) >= 0 {
		return nil, fmt.Errorf("db: repair index %v out of range [0, %v)", index, d.NumRepairs())
	}
	blocks := d.Blocks()
	out := make([]Fact, len(blocks))
	rem := new(big.Int).Set(index)
	radix := new(big.Int)
	digit := new(big.Int)
	// EachRepair varies the LAST block fastest; decode accordingly.
	for i := len(blocks) - 1; i >= 0; i-- {
		radix.SetInt64(int64(len(blocks[i])))
		rem.QuoRem(rem, radix, digit)
		out[i] = blocks[i][digit.Int64()]
	}
	return out, nil
}

// Remove deletes a fact, reporting whether it was present. Only the fact's
// relation is touched: its structures are privatized if shared and updated
// in place, while every other relation's facts, postings, and digests are
// untouched. The global fact and block-order slices are compacted with one
// flat pass each.
func (d *DB) Remove(f Fact) bool {
	r, ok := d.rels[f.Rel]
	if !ok {
		return false
	}
	if _, present := r.ids[f.ID()]; !present {
		return false
	}
	m := r.mutable()
	if m != r {
		d.rels[f.Rel] = m
	}
	blockEmptied := m.remove(f)
	d.dropGlobalFact(f)
	if blockEmptied {
		d.dropBlockRef(blockRef{rel: f.Rel, bid: f.BlockID()})
	}
	if len(m.facts) == 0 {
		delete(d.rels, f.Rel)
	}
	d.resetRoot()
	return true
}

// dropGlobalFact removes the first (only) occurrence of f from the global
// insertion-order slice with a flat copy.
func (d *DB) dropGlobalFact(f Fact) {
	for i, g := range d.facts {
		if g.Equal(f) {
			kept := make([]Fact, 0, len(d.facts)-1)
			kept = append(kept, d.facts[:i]...)
			kept = append(kept, d.facts[i+1:]...)
			d.facts = kept
			return
		}
	}
}

// dropBlockRef removes one block reference from the global block order.
func (d *DB) dropBlockRef(ref blockRef) {
	for i, b := range d.blockOrder {
		if b == ref {
			kept := make([]blockRef, 0, len(d.blockOrder)-1)
			kept = append(kept, d.blockOrder[:i]...)
			kept = append(kept, d.blockOrder[i+1:]...)
			d.blockOrder = kept
			return
		}
	}
}

// assignFrom moves n's content into d field-wise (d's mutex must not be
// copied), dropping any memoized digest of d.
func (d *DB) assignFrom(n *DB) {
	d.facts = n.facts
	d.blockOrder = n.blockOrder
	d.rels = n.rels
	d.resetRoot()
}

// RemoveBlock deletes the entire block of f, reporting how many facts were
// removed. Like Remove, only the fact's relation is touched.
func (d *DB) RemoveBlock(f Fact) int {
	r, ok := d.rels[f.Rel]
	if !ok {
		return 0
	}
	blk := r.blocks[f.BlockID()]
	if len(blk) == 0 {
		return 0
	}
	// Copy the block's facts first: removing mutates the slice we iterate.
	facts := make([]Fact, len(blk))
	copy(facts, blk)
	for _, g := range facts {
		d.Remove(g)
	}
	return len(facts)
}
