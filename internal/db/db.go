package db

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/govern"
)

// DB is an uncertain database: a finite set of facts. Facts are deduplicated
// and kept in insertion order for deterministic iteration. The zero value is
// not ready for use; call New.
//
// Reads (including the lazily built structural index, see index.go) are safe
// for concurrent use; mutations (Add, Remove, RemoveBlock) are not and must
// not race with reads.
type DB struct {
	facts      []Fact
	ids        map[string]int    // Fact.ID() → index into facts
	blocks     map[string][]int  // Fact.BlockID() → indices, in insertion order
	rels       map[string][]int  // relation name → indices
	sigs       map[string][2]int // relation name → [arity, keyLen]
	blockOrder []string          // block IDs in first-insertion order

	mu  sync.Mutex // guards idx
	idx *dbIndex   // memoized structural index; nil until built, reset on mutation
}

// New returns an empty uncertain database.
func New() *DB {
	return &DB{
		ids:    make(map[string]int),
		blocks: make(map[string][]int),
		rels:   make(map[string][]int),
		sigs:   make(map[string][2]int),
	}
}

// FromFacts returns a database containing the given facts.
func FromFacts(facts ...Fact) (*DB, error) {
	d := New()
	for _, f := range facts {
		if err := d.Add(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustFromFacts is FromFacts panicking on error, for tests and literals.
func MustFromFacts(facts ...Fact) *DB {
	d, err := FromFacts(facts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Add inserts a fact (idempotently). It rejects invalid facts and signature
// conflicts with previously inserted facts of the same relation.
func (d *DB) Add(f Fact) error {
	if err := f.Validate(); err != nil {
		return err
	}
	sig := [2]int{len(f.Args), f.KeyLen}
	if prev, ok := d.sigs[f.Rel]; ok && prev != sig {
		return fmt.Errorf("db: relation %s used with signatures [%d,%d] and [%d,%d]",
			f.Rel, prev[0], prev[1], sig[0], sig[1])
	}
	d.addValidated(f)
	return nil
}

// addValidated inserts a fact that is already known to be valid and
// signature-consistent with the database (facts coming from another DB that
// validated them on first insert). Skipping re-validation keeps derived
// databases (Restrict, WithoutBlock, RepairDB) off the per-fact error paths.
func (d *DB) addValidated(f Fact) {
	id := f.ID()
	if _, ok := d.ids[id]; ok {
		return
	}
	d.invalidate()
	idx := len(d.facts)
	d.facts = append(d.facts, f)
	d.ids[id] = idx
	d.sigs[f.Rel] = [2]int{len(f.Args), f.KeyLen}
	bid := f.BlockID()
	if _, ok := d.blocks[bid]; !ok {
		d.blockOrder = append(d.blockOrder, bid)
	}
	d.blocks[bid] = append(d.blocks[bid], idx)
	d.rels[f.Rel] = append(d.rels[f.Rel], idx)
}

// Len returns the number of facts.
func (d *DB) Len() int { return len(d.facts) }

// Facts returns all facts in insertion order. The slice must not be
// modified.
func (d *DB) Facts() []Fact { return d.facts }

// Has reports whether the fact is present.
func (d *DB) Has(f Fact) bool {
	_, ok := d.ids[f.ID()]
	return ok
}

// Relations returns the relation names present, sorted.
func (d *DB) Relations() []string {
	out := make([]string, 0, len(d.rels))
	for r := range d.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Signature returns the [arity, keyLen] signature of a relation present in
// the database.
func (d *DB) Signature(rel string) (arity, keyLen int, ok bool) {
	sig, ok := d.sigs[rel]
	return sig[0], sig[1], ok
}

// FactsOf returns the facts of the given relation in insertion order.
func (d *DB) FactsOf(rel string) []Fact {
	idxs := d.rels[rel]
	out := make([]Fact, len(idxs))
	for i, idx := range idxs {
		out[i] = d.facts[idx]
	}
	return out
}

// Block returns the block of the given fact: all facts key-equal to it
// (including f itself if present).
func (d *DB) Block(f Fact) []Fact {
	idxs := d.blocks[f.BlockID()]
	out := make([]Fact, len(idxs))
	for i, idx := range idxs {
		out[i] = d.facts[idx]
	}
	return out
}

// Blocks returns all blocks in first-insertion order. Each block lists its
// facts in insertion order.
func (d *DB) Blocks() [][]Fact {
	out := make([][]Fact, 0, len(d.blockOrder))
	for _, bid := range d.blockOrder {
		idxs := d.blocks[bid]
		blk := make([]Fact, len(idxs))
		for i, idx := range idxs {
			blk[i] = d.facts[idx]
		}
		out = append(out, blk)
	}
	return out
}

// NumBlocks returns the number of blocks.
func (d *DB) NumBlocks() int { return len(d.blockOrder) }

// IsConsistent reports whether every block is a singleton.
func (d *DB) IsConsistent() bool {
	for _, idxs := range d.blocks {
		if len(idxs) > 1 {
			return false
		}
	}
	return true
}

// ActiveDomain returns the sorted set of constants occurring in the
// database.
func (d *DB) ActiveDomain() []string {
	seen := make(map[string]struct{})
	for _, f := range d.facts {
		for _, a := range f.Args {
			seen[a] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of the database sharing fact values (facts are
// immutable by convention). The copy is structural: the internal maps and
// slices are duplicated directly instead of re-validating and re-encoding
// every fact through Add, so cloning is a flat O(n) copy. The memoized
// structural index is shared with the original (it describes identical
// content and is immutable); either database rebuilds its own on mutation.
func (d *DB) Clone() *DB {
	c := &DB{
		facts:      append([]Fact(nil), d.facts...),
		ids:        make(map[string]int, len(d.ids)),
		blocks:     make(map[string][]int, len(d.blocks)),
		rels:       make(map[string][]int, len(d.rels)),
		sigs:       make(map[string][2]int, len(d.sigs)),
		blockOrder: append([]string(nil), d.blockOrder...),
	}
	for k, v := range d.ids {
		c.ids[k] = v
	}
	for k, v := range d.blocks {
		c.blocks[k] = append([]int(nil), v...)
	}
	for k, v := range d.rels {
		c.rels[k] = append([]int(nil), v...)
	}
	for k, v := range d.sigs {
		c.sigs[k] = v
	}
	d.mu.Lock()
	c.idx = d.idx
	d.mu.Unlock()
	return c
}

// Restrict returns the sub-database containing only facts satisfying keep.
// Facts were validated on first insertion, so the copy skips re-validation.
func (d *DB) Restrict(keep func(Fact) bool) *DB {
	c := New()
	for _, f := range d.facts {
		if keep(f) {
			c.addValidated(f)
		}
	}
	return c
}

// PartitionFacts splits the database into n sub-databases in one validated
// pass: fact i goes to part label(i, f), and labels outside [0, n) drop the
// fact. Each part preserves the original insertion order, so partitions are
// deterministic for a given database and label function. The shard layer
// uses this to materialize all of a decomposition's sub-instances in O(facts)
// instead of one Restrict scan per shard.
func (d *DB) PartitionFacts(n int, label func(i int, f Fact) int) []*DB {
	parts := make([]*DB, n)
	for i := range parts {
		parts[i] = New()
	}
	for i, f := range d.facts {
		if g := label(i, f); g >= 0 && g < n {
			parts[g].addValidated(f)
		}
	}
	return parts
}

// WithoutBlock returns the database with the entire block of f removed
// (Lemma 1's purification step removes whole blocks).
func (d *DB) WithoutBlock(f Fact) *DB {
	bid := f.BlockID()
	return d.Restrict(func(g Fact) bool { return g.BlockID() != bid })
}

// NumRepairs returns the number of repairs: the product of the block sizes
// (1 for the empty database, whose only repair is empty).
func (d *DB) NumRepairs() *big.Int {
	n := big.NewInt(1)
	for _, idxs := range d.blocks {
		n.Mul(n, big.NewInt(int64(len(idxs))))
	}
	return n
}

// EachRepair enumerates all repairs, invoking yield with each repair as a
// fact slice (one fact per block, in block order). Enumeration stops early
// if yield returns false. The slice passed to yield is reused across calls;
// copy it to retain. Returns false iff some yield returned false.
func (d *DB) EachRepair(yield func(repair []Fact) bool) bool {
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return yield(repair)
		}
		for _, f := range blocks[i] {
			repair[i] = f
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// EachRepairCtx is EachRepair with cooperative cancellation: one governor
// step is charged per repair yielded, and enumeration aborts with the
// governor's error on cancellation, deadline, or budget exhaustion. The
// bool result is false iff some yield returned false (as in EachRepair);
// it is unspecified when the error is non-nil.
func (d *DB) EachRepairCtx(ctx context.Context, yield func(repair []Fact) bool) (bool, error) {
	g := govern.From(ctx)
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(blocks) {
			if err := g.Step(); err != nil {
				return false, err
			}
			return yield(repair), nil
		}
		for _, f := range blocks[i] {
			repair[i] = f
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// RepairDB materializes a repair (as produced by EachRepair) into a
// consistent database. The facts must come from a valid database; they are
// not re-validated.
func RepairDB(repair []Fact) *DB {
	d := New()
	for _, f := range repair {
		d.addValidated(f)
	}
	return d
}

// Union returns a new database containing the facts of both inputs.
func Union(a, b *DB) (*DB, error) {
	c := New()
	for _, f := range a.Facts() {
		if err := c.Add(f); err != nil {
			return nil, err
		}
	}
	for _, f := range b.Facts() {
		if err := c.Add(f); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Parse reads a database in the textual format: one fact per line (or
// comma-separated), e.g.
//
//	C(PODS, 2016 | Rome)
//	C(PODS, 2016 | Paris)
//	R(PODS | A)
//
// Bare identifiers and numbers denote constants; quoted strings are also
// constants. Variables are not allowed in database files.
//
// Parse is hardened against adversarial input: NUL bytes are rejected up
// front, rows wider than MaxArity and signature conflicts between rows of
// the same relation are reported as errors, and no input can panic.
func Parse(input string) (*DB, error) {
	if i := strings.IndexByte(input, 0); i >= 0 {
		return nil, fmt.Errorf("db: input contains a NUL byte at offset %d", i)
	}
	q, err := cq.ParseQuery(input)
	if err != nil {
		return nil, err
	}
	d := New()
	for _, a := range q.Atoms {
		args := make([]string, len(a.Args))
		for i, t := range a.Args {
			args[i] = t.Value // identifiers are constants in database files
		}
		if err := d.Add(Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustParse is Parse panicking on error.
func MustParse(input string) *DB {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}

// String renders the database with one fact per line, grouped by block in
// insertion order (blocks separated implicitly by key equality).
func (d *DB) String() string {
	var b strings.Builder
	for _, blk := range d.Blocks() {
		for _, f := range blk {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Equal reports whether two databases contain the same set of facts.
func (d *DB) Equal(other *DB) bool {
	if d.Len() != other.Len() {
		return false
	}
	for _, f := range d.facts {
		if !other.Has(f) {
			return false
		}
	}
	return true
}

// RepairAt returns the repair with the given index in the mixed-radix
// enumeration order used by EachRepair (block insertion order, fact
// insertion order within a block). The index must lie in [0, NumRepairs).
// Useful for random access into astronomically large repair spaces.
func (d *DB) RepairAt(index *big.Int) ([]Fact, error) {
	if index.Sign() < 0 || index.Cmp(d.NumRepairs()) >= 0 {
		return nil, fmt.Errorf("db: repair index %v out of range [0, %v)", index, d.NumRepairs())
	}
	blocks := d.Blocks()
	out := make([]Fact, len(blocks))
	rem := new(big.Int).Set(index)
	radix := new(big.Int)
	digit := new(big.Int)
	// EachRepair varies the LAST block fastest; decode accordingly.
	for i := len(blocks) - 1; i >= 0; i-- {
		radix.SetInt64(int64(len(blocks[i])))
		rem.QuoRem(rem, radix, digit)
		out[i] = blocks[i][digit.Int64()]
	}
	return out, nil
}

// Remove deletes a fact, reporting whether it was present. Indexes are
// rebuilt; O(n) per call, intended for interactive/maintenance use rather
// than hot loops.
func (d *DB) Remove(f Fact) bool {
	id := f.ID()
	if _, ok := d.ids[id]; !ok {
		return false
	}
	facts := make([]Fact, 0, len(d.facts)-1)
	for _, g := range d.facts {
		if g.ID() != id {
			facts = append(facts, g)
		}
	}
	d.rebuild(facts)
	return true
}

// rebuild replaces d's contents with the given already-validated facts,
// reconstructing every internal index.
func (d *DB) rebuild(facts []Fact) {
	n := New()
	for _, g := range facts {
		n.addValidated(g)
	}
	d.assignFrom(n)
}

// assignFrom moves n's content into d field-wise (d's mutex must not be
// copied), dropping any memoized index of d.
func (d *DB) assignFrom(n *DB) {
	d.invalidate()
	d.facts = n.facts
	d.ids = n.ids
	d.blocks = n.blocks
	d.rels = n.rels
	d.sigs = n.sigs
	d.blockOrder = n.blockOrder
}

// RemoveBlock deletes the entire block of f, reporting how many facts were
// removed.
func (d *DB) RemoveBlock(f Fact) int {
	bid := f.BlockID()
	n := 0
	facts := make([]Fact, 0, len(d.facts))
	for _, g := range d.facts {
		if g.BlockID() == bid {
			n++
			continue
		}
		facts = append(facts, g)
	}
	if n == 0 {
		return 0
	}
	d.rebuild(facts)
	return n
}
