package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/cqa-go/certainty/internal/intern"
)

// randomTestDB hand-rolls a random database (the gen package depends on db,
// so tests inside package db cannot import it): nRels relations of mixed
// arity/keyLen, with deliberate key collisions so blocks have >1 fact.
func randomTestDB(rng *rand.Rand, nFacts int) *DB {
	d := New()
	sigs := [][2]int{{1, 1}, {2, 1}, {3, 2}, {4, 2}}
	for i := 0; i < nFacts; i++ {
		rel := fmt.Sprintf("R%d", rng.Intn(4))
		sig := sigs[rng.Intn(4)]
		if r, ok := d.rels[rel]; ok {
			sig = r.sig
		}
		args := make([]string, sig[0])
		for p := range args {
			// Small domain => frequent key collisions => real blocks.
			args[p] = fmt.Sprintf("c%d", rng.Intn(6))
		}
		if err := d.Add(Fact{Rel: rel, KeyLen: sig[1], Args: args}); err != nil {
			panic(err)
		}
	}
	return d
}

// checkInternedMirrors verifies every columnar invariant of the interned
// view against the string-facing storage it mirrors.
func checkInternedMirrors(t *testing.T, d *DB) {
	t.Helper()
	in := d.Interned()
	for _, rel := range d.Relations() {
		ir := in.Rel(rel)
		if ir == nil {
			t.Fatalf("relation %s missing from interned view", rel)
		}
		facts := d.RelationFacts(rel)
		arity, keyLen, _ := d.Signature(rel)
		if ir.Arity != arity || ir.KeyLen != keyLen {
			t.Fatalf("%s signature: interned [%d,%d], want [%d,%d]", rel, ir.Arity, ir.KeyLen, arity, keyLen)
		}
		if ir.NumFacts() != len(facts) {
			t.Fatalf("%s: %d interned facts, want %d", rel, ir.NumFacts(), len(facts))
		}
		// Columns mirror the insertion-ordered fact slice.
		for i, f := range facts {
			for p, a := range f.Args {
				id := ir.Cols[p][i]
				if s := in.Syms.MustString(id); s != a {
					t.Fatalf("%s fact %d arg %d: id %d is %q, want %q", rel, i, p, id, s, a)
				}
			}
		}
		// Block spans mirror BlocksOf: same order, same facts, ascending
		// fact indices within each span.
		blocks := d.BlocksOf(rel)
		if ir.NumBlocks() != len(blocks) {
			t.Fatalf("%s: %d interned blocks, want %d", rel, ir.NumBlocks(), len(blocks))
		}
		key := make([]uint32, keyLen)
		for b, blk := range blocks {
			span := ir.BlockSpan(b)
			if len(span) != len(blk) {
				t.Fatalf("%s block %d: span size %d, want %d", rel, b, len(span), len(blk))
			}
			for j, f := range blk {
				fi := span[j]
				if j > 0 && span[j] <= span[j-1] {
					t.Fatalf("%s block %d: span not ascending: %v", rel, b, span)
				}
				if !facts[fi].Equal(f) {
					t.Fatalf("%s block %d entry %d: fact index %d is %v, want %v", rel, b, j, fi, facts[fi], f)
				}
			}
			// BlockOf finds the same span by key ids.
			for p := 0; p < keyLen; p++ {
				key[p], _ = in.Syms.Lookup(blk[0].Args[p])
			}
			got, ok := ir.BlockOf(key)
			if !ok || len(got) != len(span) || &got[0] != &span[0] {
				t.Fatalf("%s block %d: BlockOf did not return the span (ok=%v)", rel, b, ok)
			}
		}
		// FactIndex/HasTuple agree with Has; postings mirror FactsAt.
		args := make([]uint32, arity)
		for i, f := range facts {
			for p, a := range f.Args {
				args[p], _ = in.Syms.Lookup(a)
			}
			fi, ok := ir.FactIndex(args)
			if !ok || int(fi) != i {
				t.Fatalf("%s: FactIndex(%v) = (%d, %v), want (%d, true)", rel, f, fi, ok, i)
			}
			for p, a := range f.Args {
				post := ir.Posting(p, args[p])
				want := d.FactsAt(rel, p, a)
				if len(post) != len(want) {
					t.Fatalf("%s posting (%d,%q): %d entries, want %d", rel, p, a, len(post), len(want))
				}
				for j, pi := range post {
					if j > 0 && post[j] <= post[j-1] {
						t.Fatalf("%s posting (%d,%q) not ascending: %v", rel, p, a, post)
					}
					if !facts[pi].Equal(want[j]) {
						t.Fatalf("%s posting (%d,%q) entry %d mismatches FactsAt", rel, p, a, j)
					}
				}
			}
		}
	}
	// Domain mirrors ActiveDomain as a set.
	dom := make(map[string]bool)
	for _, id := range in.Domain() {
		if !in.IsDomainSym(id) {
			t.Fatalf("domain id %d not flagged by IsDomainSym", id)
		}
		dom[in.Syms.MustString(id)] = true
	}
	want := d.ActiveDomain()
	if len(dom) != len(want) {
		t.Fatalf("domain has %d constants, want %d", len(dom), len(want))
	}
	for _, c := range want {
		if !dom[c] {
			t.Fatalf("constant %q missing from interned domain", c)
		}
	}
}

func TestInternedColumnarInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := randomTestDB(rng, 5+rng.Intn(120))
		checkInternedMirrors(t, d)
	}
}

func TestInternedEmptyAndTiny(t *testing.T) {
	checkInternedMirrors(t, New())
	checkInternedMirrors(t, MustParse("R(a | b)"))
}

func TestInternedAbsentProbes(t *testing.T) {
	d := MustParse("R(a | b), R(a | c), S(b | d)")
	in := d.Interned()
	ir := in.Rel("R")
	if _, ok := ir.BlockOf([]uint32{intern.None}); ok {
		t.Fatal("BlockOf(None) resolved")
	}
	if ir.HasTuple([]uint32{intern.None, intern.None}) {
		t.Fatal("HasTuple(None, None) resolved")
	}
	if in.Rel("T") != nil {
		t.Fatal("absent relation resolved")
	}
	if in.IsDomainSym(intern.None) {
		t.Fatal("None is in the domain")
	}
	// The relation names are interned but (here) not fact arguments, so
	// they must not be domain symbols.
	rid, _ := in.Syms.Lookup("R")
	if in.IsDomainSym(rid) {
		t.Fatal("relation name leaked into the active domain")
	}
}

func TestInternedInvalidatedOnMutation(t *testing.T) {
	d := MustParse("R(a | b)")
	in1 := d.Interned()
	if err := d.Add(NewFact("R", 1, "a", "c")); err != nil {
		t.Fatal(err)
	}
	in2 := d.Interned()
	if in1 == in2 {
		t.Fatal("mutation did not invalidate the interned view")
	}
	checkInternedMirrors(t, d)
	d.Remove(NewFact("R", 1, "a", "c"))
	in3 := d.Interned()
	if in3 == in2 {
		t.Fatal("removal did not invalidate the interned view")
	}
	checkInternedMirrors(t, d)
}

func TestInternedSharedByClone(t *testing.T) {
	d := MustParse("R(a | b), S(a | c)")
	in := d.Interned()
	c := d.Clone()
	if c.Interned() != in {
		t.Fatal("clone rebuilt the interned view instead of sharing it")
	}
	// Mutating the clone privatizes: the clone rebuilds, the original keeps
	// its snapshot.
	if err := c.Add(NewFact("R", 1, "z", "w")); err != nil {
		t.Fatal(err)
	}
	if c.Interned() == in {
		t.Fatal("clone mutation did not invalidate its interned view")
	}
	if d.Interned() != in {
		t.Fatal("clone mutation invalidated the original's interned view")
	}
	checkInternedMirrors(t, c)
	checkInternedMirrors(t, d)
}

// TestInternedSnapshotStableIDs is the save→reload property test: a
// snapshot round-trip preserves the global fact insertion order, so the
// reloaded database assigns the exact same dense ids — and, independently,
// the same digests (digests never consult the interned view).
func TestInternedSnapshotStableIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		d := randomTestDB(rng, 5+rng.Intn(100))
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if d.Digest() != r.Digest() {
			t.Fatal("digest changed across snapshot round-trip")
		}
		din, rin := d.Interned(), r.Interned()
		if din.Syms.Len() != rin.Syms.Len() {
			t.Fatalf("symbol count changed: %d → %d", din.Syms.Len(), rin.Syms.Len())
		}
		for id := 0; id < din.Syms.Len(); id++ {
			a, b := din.Syms.MustString(uint32(id)), rin.Syms.MustString(uint32(id))
			if a != b {
				t.Fatalf("id %d changed meaning across reload: %q → %q", id, a, b)
			}
		}
		checkInternedMirrors(t, r)
	}
}
