package cq

import (
	"fmt"
	"strings"
)

// Query is a Boolean conjunctive query: a finite set of atoms, representing
// the existential closure of their conjunction. The slice order is
// insignificant semantically but preserved for deterministic output.
type Query struct {
	Atoms []Atom
}

// NewQuery builds a query from atoms, panicking if the atoms do not form a
// well-formed query (invalid signatures or inconsistent signatures for a
// repeated relation name).
func NewQuery(atoms ...Atom) Query {
	q := Query{Atoms: atoms}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}

// Validate checks every atom and that repeated relation names (self-joins)
// carry identical signatures, since every relation name has one fixed
// signature.
func (q Query) Validate() error {
	sigs := make(map[string][2]int)
	for _, a := range q.Atoms {
		if err := a.Validate(); err != nil {
			return err
		}
		sig := [2]int{a.Arity(), a.KeyLen}
		if prev, ok := sigs[a.Rel]; ok && prev != sig {
			return fmt.Errorf("cq: relation %s used with signatures [%d,%d] and [%d,%d]",
				a.Rel, prev[0], prev[1], sig[0], sig[1])
		}
		sigs[a.Rel] = sig
	}
	return nil
}

// Len returns the number of atoms.
func (q Query) Len() int { return len(q.Atoms) }

// IsEmpty reports whether the query has no atoms (the trivially true query).
func (q Query) IsEmpty() bool { return len(q.Atoms) == 0 }

// Vars returns vars(q), the set of variables occurring in the query.
func (q Query) Vars() VarSet {
	s := make(VarSet)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				s.Add(t.Value)
			}
		}
	}
	return s
}

// Constants returns the set of constant values occurring in the query.
func (q Query) Constants() map[string]struct{} {
	s := make(map[string]struct{})
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsConst {
				s[t.Value] = struct{}{}
			}
		}
	}
	return s
}

// HasSelfJoin reports whether some relation name occurs in more than one
// atom.
func (q Query) HasSelfJoin() bool {
	seen := make(map[string]struct{}, len(q.Atoms))
	for _, a := range q.Atoms {
		if _, ok := seen[a.Rel]; ok {
			return true
		}
		seen[a.Rel] = struct{}{}
	}
	return false
}

// AtomByRel returns the first atom with the given relation name.
func (q Query) AtomByRel(rel string) (Atom, bool) {
	for _, a := range q.Atoms {
		if a.Rel == rel {
			return a, true
		}
	}
	return Atom{}, false
}

// Without returns the query q \ {F} where F is identified by index.
func (q Query) Without(i int) Query {
	atoms := make([]Atom, 0, len(q.Atoms)-1)
	atoms = append(atoms, q.Atoms[:i]...)
	atoms = append(atoms, q.Atoms[i+1:]...)
	return Query{Atoms: atoms}
}

// WithoutAtom returns the query with every atom structurally equal to a
// removed.
func (q Query) WithoutAtom(a Atom) Query {
	atoms := make([]Atom, 0, len(q.Atoms))
	for _, b := range q.Atoms {
		if !b.Equal(a) {
			atoms = append(atoms, b)
		}
	}
	return Query{Atoms: atoms}
}

// IndexOf returns the index of the first atom structurally equal to a, or
// -1 if absent.
func (q Query) IndexOf(a Atom) int {
	for i, b := range q.Atoms {
		if b.Equal(a) {
			return i
		}
	}
	return -1
}

// Substitute returns q[x̄ ↦ ā] as in Definition 7: every occurrence of a
// variable bound by v is replaced by the corresponding constant.
func (q Query) Substitute(v Valuation) Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Substitute(v)
	}
	return Query{Atoms: atoms}
}

// Rename returns the query with variables renamed by the mapping.
func (q Query) Rename(m map[string]string) Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Rename(m)
	}
	return Query{Atoms: atoms}
}

// Clone returns a deep copy of the query.
func (q Query) Clone() Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]Term, len(a.Args))
		copy(args, a.Args)
		atoms[i] = Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
	}
	return Query{Atoms: atoms}
}

// Equal reports whether q and other contain the same atoms in the same
// order.
func (q Query) Equal(other Query) bool {
	if len(q.Atoms) != len(other.Atoms) {
		return false
	}
	for i := range q.Atoms {
		if !q.Atoms[i].Equal(other.Atoms[i]) {
			return false
		}
	}
	return true
}

// EqualAsSet reports whether q and other contain the same set of atoms,
// ignoring order and duplicates.
func (q Query) EqualAsSet(other Query) bool {
	contains := func(qq Query, a Atom) bool { return qq.IndexOf(a) >= 0 }
	for _, a := range q.Atoms {
		if !contains(other, a) {
			return false
		}
	}
	for _, a := range other.Atoms {
		if !contains(q, a) {
			return false
		}
	}
	return true
}

// ConnectedComponents partitions the atoms into maximal groups linked by
// shared variables. Atoms without variables form singleton components. The
// result lists atom indexes per component. This is the decomposition used by
// rule R2 of the IsSafe algorithm and by several solver stages.
func (q Query) ConnectedComponents() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := make(map[string]int)
	for i, a := range q.Atoms {
		for v := range a.Vars() {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]int)
	order := []int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// String renders the query as a comma-separated list of atoms.
func (q Query) String() string {
	if len(q.Atoms) == 0 {
		return "{}"
	}
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
