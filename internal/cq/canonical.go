package cq

import "sort"

// Canonicalize returns a structurally canonical form of a self-join-free
// query: atoms sorted by relation name and variables renamed v1, v2, ... in
// first-occurrence order over the sorted atoms. Two self-join-free queries
// that differ only in atom order and variable names canonicalize
// identically, making the result usable as a cache or dedup key. The
// mapping from old to new variable names is returned alongside.
//
// For queries with self-joins the canonical form is still deterministic
// and semantics-preserving, but isomorphic queries are not guaranteed to
// collide (atom order among same-relation atoms follows the rendered
// argument order, not a graph-isomorphism search).
func Canonicalize(q Query) (Query, map[string]string) {
	atoms := make([]Atom, len(q.Atoms))
	copy(atoms, q.Atoms)
	sort.SliceStable(atoms, func(i, j int) bool {
		if atoms[i].Rel != atoms[j].Rel {
			return atoms[i].Rel < atoms[j].Rel
		}
		return atoms[i].String() < atoms[j].String()
	})
	rename := make(map[string]string)
	next := 0
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		args := make([]Term, len(a.Args))
		for j, t := range a.Args {
			if t.IsConst {
				args[j] = t
				continue
			}
			nv, ok := rename[t.Value]
			if !ok {
				next++
				nv = canonicalVarName(next)
				rename[t.Value] = nv
			}
			args[j] = Var(nv)
		}
		out[i] = Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
	}
	return Query{Atoms: out}, rename
}

func canonicalVarName(i int) string {
	// v1, v2, ... — a namespace unlikely to collide with user constants
	// and stable across runs.
	digits := []byte{}
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return "v" + string(digits)
}

// CanonicalKey returns a string key identifying the canonical form.
func CanonicalKey(q Query) string {
	c, _ := Canonicalize(q)
	return c.String()
}
