package cq

import "fmt"

// This file constructs the concrete queries studied in the paper.

// Q1 returns the query q1 of Example 2 / Figure 2:
//
//	q1 = {R(u, a, x), S(y, x, z), T(x, y), P(x, z)}
//
// with signatures R[3,1], S[3,1], T[2,1], P[2,1] and 'a' a constant. Its
// attack graph (Fig. 2 right) has weak attacks F→G, F→H, F→I, H→G, I→G,
// I→H, H→I and the single strong attack G→F.
func Q1() Query {
	return NewQuery(
		NewAtom("R", 1, Var("u"), Const("a"), Var("x")),
		NewAtom("S", 1, Var("y"), Var("x"), Var("z")),
		NewAtom("T", 1, Var("x"), Var("y")),
		NewAtom("P", 1, Var("x"), Var("z")),
	)
}

// Q0 returns q0 = {R0(x, y), S0(y, z, x)} with signatures R0[2,1] and
// S0[3,2], the query whose CERTAINTY problem is coNP-hard (Kolaitis–Pema)
// and the source of the Theorem 2 reduction.
func Q0() Query {
	return NewQuery(
		NewAtom("R0", 1, Var("x"), Var("y")),
		NewAtom("S0", 2, Var("y"), Var("z"), Var("x")),
	)
}

// CycleVar returns the canonical variable name x_i used by C(k) and AC(k).
func CycleVar(i int) string { return fmt.Sprintf("x%d", i) }

// Ck returns the cycle query of Definition 8:
//
//	C(k) = {R1(x1, x2), R2(x2, x3), ..., Rk(xk, x1)}
//
// with every Ri of signature [2,1]. C(k) is acyclic iff k = 2.
func Ck(k int) Query {
	if k < 2 {
		panic(fmt.Sprintf("cq: C(k) requires k >= 2, got %d", k))
	}
	atoms := make([]Atom, k)
	for i := 1; i <= k; i++ {
		next := i + 1
		if next > k {
			next = 1
		}
		atoms[i-1] = NewAtom(fmt.Sprintf("R%d", i), 1, Var(CycleVar(i)), Var(CycleVar(next)))
	}
	return Query{Atoms: atoms}
}

// ACk returns the acyclic cycle query of Definition 8:
//
//	AC(k) = C(k) ∪ {Sk(x1, ..., xk)}
//
// where Sk has the all-key signature [k,k]. AC(k) is acyclic for every k
// because the Sk-atom contains all variables; its attack graph contains
// k(k-1)/2 nonterminal weak cycles and no strong cycle (Fig. 5 shows k=3).
func ACk(k int) Query {
	q := Ck(k)
	args := make([]Term, k)
	for i := 1; i <= k; i++ {
		args[i-1] = Var(CycleVar(i))
	}
	q.Atoms = append(q.Atoms, NewAtom(fmt.Sprintf("S%d", k), k, args...))
	return q
}

// TerminalCyclesQuery returns a 7-atom query in the spirit of Figure 4 /
// Example 5: its attack graph consists of three weak *terminal* 2-cycles
// (R1⇄R2 sharing x with R3⇄R4, which shares y with R5⇄R6) plus an
// unattacked atom R0 that attacks into the cycles. The arXiv text of the
// figure does not preserve the key underlines, so the signatures here are
// chosen to realize exactly the structure the caption asserts:
//
//	R0(u | x)        R1(x, u1 | u2) ⇄ R2(x, u2 | u1)
//	                 R3(x, y, u3 | u4) ⇄ R4(x, y, u4 | u3)
//	                 R5(y, u5 | u6) ⇄ R6(y, u6 | u5)
//
// Theorem 3 applies: CERTAINTY is in P but, having a cyclic attack graph,
// not first-order expressible.
func TerminalCyclesQuery() Query {
	return NewQuery(
		NewAtom("R0", 1, Var("u"), Var("x")),
		NewAtom("R1", 2, Var("x"), Var("u1"), Var("u2")),
		NewAtom("R2", 2, Var("x"), Var("u2"), Var("u1")),
		NewAtom("R3", 3, Var("x"), Var("y"), Var("u3"), Var("u4")),
		NewAtom("R4", 3, Var("x"), Var("y"), Var("u4"), Var("u3")),
		NewAtom("R5", 2, Var("y"), Var("u5"), Var("u6")),
		NewAtom("R6", 2, Var("y"), Var("u6"), Var("u5")),
	)
}

// TerminalCyclesBaseQuery returns TerminalCyclesQuery without the
// unattacked atom R0: every atom lies on a weak terminal 2-cycle, which is
// exactly the base case of the induction in the proof of Theorem 3.
func TerminalCyclesBaseQuery() Query {
	q := TerminalCyclesQuery()
	return q.Without(0)
}

// ConferenceQuery returns the introduction's query over the Fig. 1 schema:
//
//	∃x∃y (C(x, y, 'Rome') ∧ R(x, 'A'))
//
// "Will Rome host some A conference?" with C[3,2] (conf, year → city) and
// R[2,1] (conf → rank).
func ConferenceQuery() Query {
	return NewQuery(
		NewAtom("C", 2, Var("x"), Var("y"), Const("Rome")),
		NewAtom("R", 1, Var("x"), Const("A")),
	)
}
