package cq

// This file provides classical conjunctive-query tooling: homomorphisms,
// containment, equivalence, and minimization. For the self-join-free
// queries of the paper minimization is trivial (a redundant atom would
// need a second atom with the same relation name), but the evaluation
// engine accepts arbitrary conjunctive queries, and the tooling rounds out
// the substrate.

// Homomorphism searches for a homomorphism from q to p: a mapping h from
// the variables of q to terms of p such that h(A) ∈ p for every atom A of
// q (constants map to themselves). Returns the witnessing mapping.
func Homomorphism(q, p Query) (map[string]Term, bool) {
	// Index p's atoms by relation.
	byRel := make(map[string][]Atom)
	for _, a := range p.Atoms {
		byRel[a.Rel] = append(byRel[a.Rel], a)
	}
	h := make(map[string]Term)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == q.Len() {
			return true
		}
		a := q.Atoms[i]
		for _, target := range byRel[a.Rel] {
			if target.KeyLen != a.KeyLen || target.Arity() != a.Arity() {
				continue
			}
			var assigned []string
			ok := true
			for j, t := range a.Args {
				image := target.Args[j]
				if t.IsConst {
					if !image.IsConst || image.Value != t.Value {
						ok = false
						break
					}
					continue
				}
				if prev, bound := h[t.Value]; bound {
					if prev != image {
						ok = false
						break
					}
					continue
				}
				h[t.Value] = image
				assigned = append(assigned, t.Value)
			}
			if ok && rec(i+1) {
				return true
			}
			for _, v := range assigned {
				delete(h, v)
			}
		}
		return false
	}
	if rec(0) {
		out := make(map[string]Term, len(h))
		for k, v := range h {
			out[k] = v
		}
		return out, true
	}
	return nil, false
}

// ContainedIn reports whether q implies p as Boolean queries: every
// database satisfying q also satisfies p. By the homomorphism theorem this
// holds iff a homomorphism from p to q exists.
func ContainedIn(q, p Query) bool {
	_, ok := Homomorphism(p, q)
	return ok
}

// Equivalent reports whether two Boolean queries are logically equivalent
// (homomorphically equivalent).
func Equivalent(q, p Query) bool {
	return ContainedIn(q, p) && ContainedIn(p, q)
}

// Minimize returns a core of q: a minimal subquery equivalent to q,
// computed by repeatedly dropping atoms whose removal preserves
// equivalence. For self-join-free queries the result is always q itself.
func Minimize(q Query) Query {
	cur := q
	for {
		removed := false
		for i := range cur.Atoms {
			candidate := cur.Without(i)
			// Dropping an atom always gives cur ⊨ candidate; equivalence
			// needs candidate ⊨ cur, i.e. a homomorphism cur → candidate.
			if _, ok := Homomorphism(cur, candidate); ok {
				cur = candidate
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}
