package cq

import (
	"testing"
	"testing/quick"
)

func TestHomomorphismBasics(t *testing.T) {
	// E(x,y) maps into E(a,b) via x↦a, y↦b.
	q := MustParseQuery("E(x | y)")
	p := MustParseQuery("E('a' | 'b')")
	h, ok := Homomorphism(q, p)
	if !ok || h["x"] != Const("a") || h["y"] != Const("b") {
		t.Errorf("h = %v, ok = %v", h, ok)
	}
	// No homomorphism the other way (constants can't map to variables).
	if _, ok := Homomorphism(p, q); ok {
		t.Error("constants must map to themselves")
	}
	// Relation mismatch.
	if _, ok := Homomorphism(MustParseQuery("F(x | y)"), p); ok {
		t.Error("relation mismatch")
	}
	// Signature mismatch.
	if _, ok := Homomorphism(q, MustParseQuery("E('a', 'b')")); ok {
		t.Error("key-length mismatch must fail")
	}
}

func TestHomomorphismPathToTriangle(t *testing.T) {
	// Classic: the 2-path maps homomorphically into any edge with a loop,
	// and into the triangle? A path x→y→z maps into a triangle a→b→c→a
	// (x↦a, y↦b, z↦c).
	path := MustParseQuery("E(x | y), E(y | z)")
	triangle := MustParseQuery("E('a' | 'b'), E('b' | 'c'), E('c' | 'a')")
	if _, ok := Homomorphism(path, triangle); !ok {
		t.Error("path must map into triangle")
	}
	if _, ok := Homomorphism(triangle, path); ok {
		t.Error("triangle must not map into 2-path")
	}
	// Containment: satisfying the triangle implies satisfying the path.
	if !ContainedIn(triangle, path) {
		t.Error("triangle ⊨ path")
	}
	if ContainedIn(path, triangle) {
		t.Error("path ⊭ triangle")
	}
}

func TestEquivalentAndMinimize(t *testing.T) {
	// E(x,y) ∧ E(u,v) is equivalent to E(x,y): the second atom folds in.
	q := MustParseQuery("E(x | y), E(u | v)")
	single := MustParseQuery("E(x | y)")
	if !Equivalent(q, single) {
		t.Error("redundant atom should not change semantics")
	}
	m := Minimize(q)
	if m.Len() != 1 {
		t.Errorf("Minimize should drop the redundant atom: %s", m)
	}
	// The path is already minimal.
	path := MustParseQuery("E(x | y), E(y | z)")
	if got := Minimize(path); got.Len() != 2 {
		t.Errorf("path is a core: %s", got)
	}
	// Self-join-free queries never shrink.
	for _, q := range []Query{Q1(), Q0(), ACk(3), TerminalCyclesQuery()} {
		if got := Minimize(q); got.Len() != q.Len() {
			t.Errorf("self-join-free query shrank: %s -> %s", q, got)
		}
	}
	// A subtler case: E(x,y) ∧ E(y,y) minimizes to E(y,y) (map x↦y).
	q2 := MustParseQuery("E(x | y), E(y | y)")
	m2 := Minimize(q2)
	if m2.Len() != 1 || !m2.Atoms[0].Equal(MustParseQuery("E(y | y)").Atoms[0]) {
		t.Errorf("Minimize = %s", m2)
	}
}

// Property: Minimize yields an equivalent query, and equivalence is
// reflexive on random queries.
func TestQuickMinimizeEquivalent(t *testing.T) {
	rels := []string{"E", "F"}
	vars := []string{"x", "y", "z"}
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		n := 1 + next(4)
		atoms := make([]Atom, n)
		for i := range atoms {
			atoms[i] = NewAtom(rels[next(2)], 1, Var(vars[next(3)]), Var(vars[next(3)]))
		}
		q := Query{Atoms: atoms}
		if !Equivalent(q, q) {
			return false
		}
		m := Minimize(q)
		return Equivalent(q, m) && m.Len() <= q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalize(t *testing.T) {
	a := MustParseQuery("S(y | x), R(x | y, 'c')")
	b := MustParseQuery("R(p | q, 'c'), S(q | p)")
	ka, kb := CanonicalKey(a), CanonicalKey(b)
	if ka != kb {
		t.Errorf("isomorphic self-join-free queries must collide:\n%s\n%s", ka, kb)
	}
	c := MustParseQuery("R(p | q, 'd'), S(q | p)") // different constant
	if CanonicalKey(c) == ka {
		t.Error("different constants must not collide")
	}
	// Canonical form is idempotent and semantics-preserving (isomorphic).
	canon, rename := Canonicalize(a)
	if CanonicalKey(canon) != ka {
		t.Error("canonicalization must be idempotent")
	}
	if len(rename) != 2 {
		t.Errorf("rename map = %v", rename)
	}
	if canon.HasSelfJoin() != a.HasSelfJoin() || canon.Len() != a.Len() {
		t.Error("structure must be preserved")
	}
	// The renamed original equals the canonical form as a set.
	if !a.Rename(rename).EqualAsSet(canon) {
		t.Errorf("rename map inconsistent: %s vs %s", a.Rename(rename), canon)
	}
	// Classification is invariant under canonicalization (checked in the
	// core tests via the same structure; here just variable hygiene).
	if canon.Vars().Has("x") || canon.Vars().Has("y") {
		t.Error("original variable names must not survive")
	}
}
