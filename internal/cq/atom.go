package cq

import (
	"fmt"
	"strings"
)

// Atom is an R-atom R(s1,...,sn) where the first KeyLen arguments form the
// primary key of relation R (the signature [n,k] of the paper, with
// n = len(Args) and k = KeyLen).
type Atom struct {
	Rel    string
	KeyLen int
	Args   []Term
}

// NewAtom builds an atom, panicking on an invalid signature. Construction
// bugs are programming errors, not runtime conditions, hence the panic.
func NewAtom(rel string, keyLen int, args ...Term) Atom {
	a := Atom{Rel: rel, KeyLen: keyLen, Args: args}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// Validate checks the signature constraint n >= k >= 1 (all-key atoms of
// arity 0 are ruled out by the paper's definition).
func (a Atom) Validate() error {
	if a.Rel == "" {
		return fmt.Errorf("cq: atom with empty relation name")
	}
	if a.KeyLen < 1 || a.KeyLen > len(a.Args) {
		return fmt.Errorf("cq: atom %s has invalid signature [%d,%d]", a.Rel, len(a.Args), a.KeyLen)
	}
	return nil
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// AllKey reports whether the atom's signature is [n,n].
func (a Atom) AllKey() bool { return a.KeyLen == len(a.Args) }

// KeyArgs returns the primary-key arguments (the underlined x̄).
func (a Atom) KeyArgs() []Term { return a.Args[:a.KeyLen] }

// NonKeyArgs returns the remaining arguments (ȳ).
func (a Atom) NonKeyArgs() []Term { return a.Args[a.KeyLen:] }

// KeyVars returns key(F): the set of variables occurring in the primary key.
func (a Atom) KeyVars() VarSet {
	s := make(VarSet)
	for _, t := range a.KeyArgs() {
		if t.IsVar() {
			s.Add(t.Value)
		}
	}
	return s
}

// Vars returns vars(F): the set of variables occurring anywhere in the atom.
func (a Atom) Vars() VarSet {
	s := make(VarSet)
	for _, t := range a.Args {
		if t.IsVar() {
			s.Add(t.Value)
		}
	}
	return s
}

// HasVar reports whether the variable occurs in the atom.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Args {
		if t.IsVar() && t.Value == name {
			return true
		}
	}
	return false
}

// IsGround reports whether the atom contains no variables (i.e., is a fact
// pattern).
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Substitute returns the atom with every variable in v replaced by its
// image; other terms are unchanged.
func (a Atom) Substitute(v Valuation) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = v.Apply(t)
	}
	return Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
}

// Rename returns the atom with variables renamed by the given mapping;
// variables not in the map are unchanged.
func (a Atom) Rename(m map[string]string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if n, ok := m[t.Value]; ok {
				args[i] = Var(n)
				continue
			}
		}
		args[i] = t
	}
	return Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || a.KeyLen != b.KeyLen || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom as R(x, y | z) with the key left of the bar; an
// all-key atom renders without a bar.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			if i == a.KeyLen {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}
