package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// The textual query language:
//
//	R(x, y | z), S(y | x), T('a', x | 42)
//
// An atom lists its primary-key terms, then a bar, then the remaining terms;
// an atom without a bar is all-key. Variables are identifiers starting with
// a letter or underscore; constants are single-quoted strings (backslash
// escapes ' and \) or bare numeric literals. Whitespace is insignificant and
// '#' starts a comment that extends to the end of the line.

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokConst
	tokLParen
	tokRParen
	tokComma
	tokBar
	tokNewline
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
}

type lexer struct {
	input string
	pos   int
	line  int
}

func newLexer(input string) *lexer { return &lexer{input: input, line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.pos++
			l.line++
			return token{kind: tokNewline, pos: l.pos - 1, line: l.line - 1}, nil
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '(':
			l.pos++
			return token{kind: tokLParen, pos: l.pos - 1, line: l.line}, nil
		case c == ')':
			l.pos++
			return token{kind: tokRParen, pos: l.pos - 1, line: l.line}, nil
		case c == ',':
			l.pos++
			return token{kind: tokComma, pos: l.pos - 1, line: l.line}, nil
		case c == '|':
			l.pos++
			return token{kind: tokBar, pos: l.pos - 1, line: l.line}, nil
		case c == '\'':
			return l.lexQuoted()
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1])):
			return l.lexNumber()
		case isIdentStart(rune(c)):
			return l.lexIdent()
		default:
			return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
}

func (l *lexer) lexQuoted() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch c {
		case '\\':
			if l.pos+1 >= len(l.input) {
				return token{}, fmt.Errorf("line %d: unterminated escape in constant", l.line)
			}
			if l.input[l.pos+1] == '\n' {
				l.line++ // keep line numbers honest across escaped newlines
			}
			b.WriteByte(l.input[l.pos+1])
			l.pos += 2
		case '\'':
			l.pos++
			return token{kind: tokConst, text: b.String(), pos: start, line: l.line}, nil
		case '\n':
			return token{}, fmt.Errorf("line %d: newline in quoted constant", l.line)
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, fmt.Errorf("line %d: unterminated quoted constant", l.line)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || l.input[l.pos] == '.') {
		l.pos++
	}
	return token{kind: tokConst, text: l.input[start:l.pos], pos: start, line: l.line}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.input[start:l.pos], pos: start, line: l.line}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	lex    *lexer
	tok    token
	peeked bool
}

func (p *parser) advance() error {
	if p.peeked {
		p.peeked = false
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// skipNewlines advances past newline tokens.
func (p *parser) skipNewlines() error {
	for p.tok.kind == tokNewline {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

// parseAtom parses one atom; the current token must be the relation name.
func (p *parser) parseAtom() (Atom, error) {
	if p.tok.kind != tokIdent {
		return Atom{}, fmt.Errorf("line %d: expected relation name, got %q", p.tok.line, p.tok.text)
	}
	rel := p.tok.text
	if err := p.advance(); err != nil {
		return Atom{}, err
	}
	if p.tok.kind != tokLParen {
		return Atom{}, fmt.Errorf("line %d: expected '(' after relation %s", p.tok.line, rel)
	}
	if err := p.advance(); err != nil {
		return Atom{}, err
	}
	var args []Term
	keyLen := -1
	for {
		switch p.tok.kind {
		case tokIdent:
			args = append(args, Var(p.tok.text))
		case tokConst:
			args = append(args, Const(p.tok.text))
		default:
			return Atom{}, fmt.Errorf("line %d: expected term in atom %s", p.tok.line, rel)
		}
		if err := p.advance(); err != nil {
			return Atom{}, err
		}
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
		case tokBar:
			if keyLen >= 0 {
				return Atom{}, fmt.Errorf("line %d: atom %s has two key separators", p.tok.line, rel)
			}
			keyLen = len(args)
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
		case tokRParen:
			if keyLen < 0 {
				keyLen = len(args) // all-key
			}
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			a := Atom{Rel: rel, KeyLen: keyLen, Args: args}
			if err := a.Validate(); err != nil {
				return Atom{}, fmt.Errorf("line %d: %v", p.tok.line, err)
			}
			return a, nil
		default:
			return Atom{}, fmt.Errorf("line %d: expected ',', '|' or ')' in atom %s", p.tok.line, rel)
		}
	}
}

// ParseQuery parses a Boolean conjunctive query in the textual language.
// Atoms may be separated by commas and/or newlines.
func ParseQuery(input string) (Query, error) {
	p := &parser{lex: newLexer(input)}
	if err := p.advance(); err != nil {
		return Query{}, err
	}
	var atoms []Atom
	for {
		if err := p.skipNewlines(); err != nil {
			return Query{}, err
		}
		if p.tok.kind == tokEOF {
			break
		}
		a, err := p.parseAtom()
		if err != nil {
			return Query{}, err
		}
		atoms = append(atoms, a)
		if err := p.skipNewlines(); err != nil {
			return Query{}, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Query{}, err
			}
		}
	}
	q := Query{Atoms: atoms}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery panicking on error; for tests and literals.
func MustParseQuery(input string) Query {
	q, err := ParseQuery(input)
	if err != nil {
		panic(err)
	}
	return q
}
