package cq

import "testing"

// FuzzParseQuery checks that the parser never panics and that whatever it
// accepts round-trips through String.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"R(x, y | z)",
		"R(x | y), S(y | x)",
		"C(x, y | 'Rome'), R(x | 'A')",
		"R('it\\'s', 'a\\\\b' | x)",
		"R('line\\\nbreak' | x)",
		"# comment\nR(x | y)\nS(y | z)",
		"N(1, -2 | 3.5)",
		"R(x",
		"R(x | y | z)",
		"R(|)",
		"",
		"R(x) S(y)",
		"π(α | β)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(input)
		if err != nil {
			return
		}
		if q.IsEmpty() {
			// The empty query renders as "{}" for display, which is not
			// part of the input language.
			return
		}
		rendered := q.String()
		q2, err := ParseQuery(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, rendered, err)
		}
		if !q.Equal(q2) {
			t.Fatalf("round trip changed query: %q -> %q -> %q", input, rendered, q2.String())
		}
	})
}

// FuzzValuationSubstitute checks Substitute never panics and is idempotent
// for ground results.
func FuzzValuationSubstitute(f *testing.F) {
	f.Add("R(x, y | z), S(z | x)", "x", "c1", "y", "c2")
	f.Fuzz(func(t *testing.T, queryText, v1, c1, v2, c2 string) {
		q, err := ParseQuery(queryText)
		if err != nil {
			return
		}
		val := Valuation{}
		if v1 != "" {
			val[v1] = c1
		}
		if v2 != "" {
			val[v2] = c2
		}
		s := q.Substitute(val)
		if err := s.Validate(); err != nil {
			t.Fatalf("substitution produced invalid query: %v", err)
		}
		if !s.Substitute(val).Equal(s) {
			t.Fatal("substitution not idempotent")
		}
	})
}
