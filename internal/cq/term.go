// Package cq implements Boolean conjunctive queries over relations with
// primary-key signatures, following the definitions in Section 3 of
// Wijsen, "Charting the Tractability Frontier of Certain Conjunctive Query
// Answering" (PODS 2013).
//
// A relation name R has a fixed signature [n,k] with n >= k >= 1: n is the
// arity and positions 1..k form the primary key. An atom R(x̄,ȳ) has the key
// terms x̄ underlined in the paper; here the key is the first KeyLen
// arguments. A Boolean conjunctive query is a finite set of atoms, read as
// the existential closure of their conjunction.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable or a constant appearing in an atom. The zero value is
// the empty-named variable, which is invalid; construct terms with Var and
// Const.
type Term struct {
	// IsConst reports whether the term is a constant.
	IsConst bool
	// Value is the variable name or the constant value.
	Value string
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{IsConst: false, Value: name} }

// Const returns a constant term with the given value.
func Const(value string) Term { return Term{IsConst: true, Value: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return !t.IsConst }

// String renders the term in the textual query language: variables are bare
// identifiers, constants are single-quoted. Newlines inside constants are
// rendered as an escaped (backslash-prefixed) newline, which the lexer
// reads back verbatim — a raw newline would terminate the quoted constant
// and break the round trip.
func (t Term) String() string {
	if t.IsConst {
		escaped := strings.ReplaceAll(t.Value, `\`, `\\`)
		escaped = strings.ReplaceAll(escaped, "'", `\'`)
		escaped = strings.ReplaceAll(escaped, "\n", "\\\n")
		return "'" + escaped + "'"
	}
	return t.Value
}

// VarSet is a set of variable names. It is the currency of the functional
// dependency and attack-graph machinery, where variables play the role of
// attributes.
type VarSet map[string]struct{}

// NewVarSet returns a VarSet containing the given names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Add inserts name into the set.
func (s VarSet) Add(name string) { s[name] = struct{}{} }

// AddAll inserts every element of other into the set.
func (s VarSet) AddAll(other VarSet) {
	for n := range other {
		s[n] = struct{}{}
	}
}

// Has reports whether name is in the set.
func (s VarSet) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Len returns the number of elements.
func (s VarSet) Len() int { return len(s) }

// SubsetOf reports whether every element of s is in other.
func (s VarSet) SubsetOf(other VarSet) bool {
	for n := range s {
		if !other.Has(n) {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain the same elements.
func (s VarSet) Equal(other VarSet) bool {
	return len(s) == len(other) && s.SubsetOf(other)
}

// Intersect returns the intersection of s and other.
func (s VarSet) Intersect(other VarSet) VarSet {
	out := make(VarSet)
	for n := range s {
		if other.Has(n) {
			out.Add(n)
		}
	}
	return out
}

// Union returns the union of s and other.
func (s VarSet) Union(other VarSet) VarSet {
	out := make(VarSet, len(s)+len(other))
	out.AddAll(s)
	out.AddAll(other)
	return out
}

// Minus returns the set difference s \ other.
func (s VarSet) Minus(other VarSet) VarSet {
	out := make(VarSet)
	for n := range s {
		if !other.Has(n) {
			out.Add(n)
		}
	}
	return out
}

// Clone returns a copy of the set.
func (s VarSet) Clone() VarSet {
	out := make(VarSet, len(s))
	out.AddAll(s)
	return out
}

// Sorted returns the elements in lexicographic order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the set as {a, b, c} with sorted elements.
func (s VarSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// Valuation is a total mapping from a set of variables to constants. Per the
// paper's convention it is extended to be the identity on constants and on
// variables outside its domain.
type Valuation map[string]string

// Apply maps a term through the valuation: constants map to themselves,
// bound variables to their image, and unbound variables stay variables.
func (v Valuation) Apply(t Term) Term {
	if t.IsConst {
		return t
	}
	if c, ok := v[t.Value]; ok {
		return Const(c)
	}
	return t
}

// Bind returns a copy of v with name bound to value.
func (v Valuation) Bind(name, value string) Valuation {
	out := make(Valuation, len(v)+1)
	for k, val := range v {
		out[k] = val
	}
	out[name] = value
	return out
}

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	out := make(Valuation, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Restrict returns the valuation restricted to the variables in vars.
func (v Valuation) Restrict(vars VarSet) Valuation {
	out := make(Valuation)
	for k, val := range v {
		if vars.Has(k) {
			out[k] = val
		}
	}
	return out
}

// AgreesWith reports whether v and other assign the same constant to every
// variable bound by both.
func (v Valuation) AgreesWith(other Valuation) bool {
	for k, val := range v {
		if o, ok := other[k]; ok && o != val {
			return false
		}
	}
	return true
}

// String renders the valuation as {x↦a, y↦b} with sorted variables.
func (v Valuation) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s↦%s", k, v[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
