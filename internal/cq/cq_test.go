package cq

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	if got := Var("x").String(); got != "x" {
		t.Errorf("Var(x).String() = %q", got)
	}
	if got := Const("a").String(); got != "'a'" {
		t.Errorf("Const(a).String() = %q", got)
	}
	if got := Const("it's").String(); got != `'it\'s'` {
		t.Errorf("Const escaping = %q", got)
	}
	if !Var("x").IsVar() || Const("a").IsVar() {
		t.Error("IsVar misclassifies")
	}
}

func TestVarSetOps(t *testing.T) {
	a := NewVarSet("x", "y")
	b := NewVarSet("y", "z")
	if got := a.Intersect(b); !got.Equal(NewVarSet("y")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewVarSet("x")) {
		t.Errorf("Minus = %v", got)
	}
	if !NewVarSet().SubsetOf(a) {
		t.Error("empty set must be subset of anything")
	}
	if a.SubsetOf(b) {
		t.Error("{x,y} is not a subset of {y,z}")
	}
	if got := a.String(); got != "{x, y}" {
		t.Errorf("String = %q", got)
	}
	c := a.Clone()
	c.Add("w")
	if a.Has("w") {
		t.Error("Clone must not alias")
	}
}

func TestValuation(t *testing.T) {
	v := Valuation{"x": "a"}
	if got := v.Apply(Var("x")); got != Const("a") {
		t.Errorf("Apply bound var = %v", got)
	}
	if got := v.Apply(Var("y")); got != Var("y") {
		t.Errorf("Apply unbound var = %v", got)
	}
	if got := v.Apply(Const("c")); got != Const("c") {
		t.Errorf("Apply const = %v", got)
	}
	v2 := v.Bind("y", "b")
	if _, ok := v["y"]; ok {
		t.Error("Bind must not mutate the receiver")
	}
	if v2["y"] != "b" || v2["x"] != "a" {
		t.Errorf("Bind result = %v", v2)
	}
	if !v.AgreesWith(v2) || !v2.AgreesWith(v) {
		t.Error("AgreesWith should hold on compatible valuations")
	}
	v3 := Valuation{"x": "z"}
	if v.AgreesWith(v3) {
		t.Error("AgreesWith should fail on conflicting valuations")
	}
	r := v2.Restrict(NewVarSet("y"))
	if len(r) != 1 || r["y"] != "b" {
		t.Errorf("Restrict = %v", r)
	}
}

func TestAtomAccessors(t *testing.T) {
	a := NewAtom("R", 2, Var("x"), Const("c"), Var("y"), Var("x"))
	if a.Arity() != 4 || a.AllKey() {
		t.Errorf("arity/allkey wrong: %v", a)
	}
	if !a.KeyVars().Equal(NewVarSet("x")) {
		t.Errorf("KeyVars = %v", a.KeyVars())
	}
	if !a.Vars().Equal(NewVarSet("x", "y")) {
		t.Errorf("Vars = %v", a.Vars())
	}
	if !a.HasVar("y") || a.HasVar("z") {
		t.Error("HasVar wrong")
	}
	if a.IsGround() {
		t.Error("atom with vars reported ground")
	}
	g := a.Substitute(Valuation{"x": "1", "y": "2"})
	if !g.IsGround() {
		t.Errorf("substituted atom not ground: %v", g)
	}
	if g.Args[0] != Const("1") || g.Args[3] != Const("1") {
		t.Errorf("repeated variable not substituted consistently: %v", g)
	}
	if got := a.String(); got != "R(x, 'c' | y, x)" {
		t.Errorf("String = %q", got)
	}
	allKey := NewAtom("S", 2, Var("x"), Var("y"))
	if got := allKey.String(); got != "S(x, y)" {
		t.Errorf("all-key String = %q", got)
	}
}

func TestAtomValidate(t *testing.T) {
	bad := []Atom{
		{Rel: "", KeyLen: 1, Args: []Term{Var("x")}},
		{Rel: "R", KeyLen: 0, Args: []Term{Var("x")}},
		{Rel: "R", KeyLen: 2, Args: []Term{Var("x")}},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("Validate(%v) should fail", a)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewAtom should panic on invalid signature")
			}
		}()
		NewAtom("R", 0, Var("x"))
	}()
}

func TestAtomRename(t *testing.T) {
	a := NewAtom("R", 1, Var("x"), Var("y"), Const("c"))
	r := a.Rename(map[string]string{"x": "z"})
	if r.Args[0] != Var("z") || r.Args[1] != Var("y") || r.Args[2] != Const("c") {
		t.Errorf("Rename = %v", r)
	}
}

func TestQueryBasics(t *testing.T) {
	q := Q1()
	if q.Len() != 4 || q.IsEmpty() {
		t.Fatalf("Q1 should have 4 atoms")
	}
	if !q.Vars().Equal(NewVarSet("u", "x", "y", "z")) {
		t.Errorf("Vars(q1) = %v", q.Vars())
	}
	if _, ok := q.Constants()["a"]; !ok {
		t.Error("q1 should contain constant a")
	}
	if q.HasSelfJoin() {
		t.Error("q1 has no self-join")
	}
	sj := Query{Atoms: []Atom{
		NewAtom("R", 1, Var("x"), Var("y")),
		NewAtom("R", 1, Var("y"), Var("x")),
	}}
	if !sj.HasSelfJoin() {
		t.Error("self-join not detected")
	}
	if _, ok := q.AtomByRel("S"); !ok {
		t.Error("AtomByRel(S) failed")
	}
	if _, ok := q.AtomByRel("ZZZ"); ok {
		t.Error("AtomByRel(ZZZ) should fail")
	}
	w := q.Without(0)
	if w.Len() != 3 {
		t.Errorf("Without: %v", w)
	}
	if _, ok := w.AtomByRel("R"); ok {
		t.Error("Without(0) should drop R")
	}
	if q.Len() != 4 {
		t.Error("Without must not mutate receiver")
	}
}

func TestQueryValidateSignatureConflict(t *testing.T) {
	q := Query{Atoms: []Atom{
		NewAtom("R", 1, Var("x"), Var("y")),
		NewAtom("R", 2, Var("x"), Var("y")),
	}}
	if err := q.Validate(); err == nil {
		t.Error("conflicting signatures for R should be rejected")
	}
}

func TestQuerySubstituteClone(t *testing.T) {
	q := Q0()
	s := q.Substitute(Valuation{"x": "1"})
	if s.Vars().Has("x") {
		t.Error("substituted variable still present")
	}
	if !q.Vars().Has("x") {
		t.Error("Substitute mutated receiver")
	}
	c := q.Clone()
	c.Atoms[0].Args[0] = Const("zzz")
	if q.Atoms[0].Args[0] != Var("x") {
		t.Error("Clone aliases receiver")
	}
}

func TestQueryEqualAsSet(t *testing.T) {
	a := MustParseQuery("R(x|y), S(y|x)")
	b := MustParseQuery("S(y|x), R(x|y)")
	if !a.EqualAsSet(b) {
		t.Error("EqualAsSet should ignore order")
	}
	if a.Equal(b) {
		t.Error("Equal is order-sensitive")
	}
	c := MustParseQuery("R(x|y)")
	if a.EqualAsSet(c) || c.EqualAsSet(a) {
		t.Error("EqualAsSet on different sets")
	}
}

func TestConnectedComponents(t *testing.T) {
	q := MustParseQuery("R(x|y), S(y|z), T(w|v), U(v|w2)")
	comps := q.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("expected 2 components, got %d: %v", len(comps), comps)
	}
	sizes := map[int]bool{len(comps[0]): true, len(comps[1]): true}
	if !sizes[2] {
		t.Errorf("expected two components of size 2: %v", comps)
	}
	ground := MustParseQuery("R('a'|'b'), S('c'|'d')")
	if got := ground.ConnectedComponents(); len(got) != 2 {
		t.Errorf("ground atoms must be singleton components: %v", got)
	}
}

func TestParseQueryRoundTrip(t *testing.T) {
	cases := []string{
		"R(x, y | z)",
		"R(x | y), S(y | x)",
		"C(x, y | 'Rome'), R(x | 'A')",
		"S3(x1, x2, x3)",
		"R(u, 'a' | x), S(y | x, z), T(x | y), P(x | z)",
		"N(1, -2 | 3.5)",
	}
	for _, in := range cases {
		q, err := ParseQuery(in)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", in, err)
		}
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", in, q.String(), err)
		}
		if !q.Equal(q2) {
			t.Errorf("round trip %q -> %q -> %q", in, q.String(), q2.String())
		}
	}
}

func TestParseQueryNewlinesAndComments(t *testing.T) {
	q, err := ParseQuery("# conference db query\nC(x, y | 'Rome')\nR(x | 'A')  # rank\n")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if q.Len() != 2 {
		t.Errorf("expected 2 atoms, got %d", q.Len())
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"R(x",
		"R(x | y | z)",
		"R()",
		"R(x,)",
		"(x)",
		"R(x) S", // relation without parens
		"R('unterminated)",
		"R(x y)",
		"R(| x)",
		"$(x)",
	}
	for _, in := range bad {
		if _, err := ParseQuery(in); err == nil {
			t.Errorf("ParseQuery(%q) should fail", in)
		}
	}
}

func TestParseQuotedEscapes(t *testing.T) {
	q, err := ParseQuery(`R('it\'s', 'a\\b' | x)`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	a := q.Atoms[0]
	if a.Args[0] != Const("it's") || a.Args[1] != Const(`a\b`) {
		t.Errorf("escapes wrong: %v", a.Args)
	}
}

// TestLineNumbersAfterEscapedNewline: escaped newlines inside a quoted
// constant still count toward line numbering, so an error after a
// multi-line constant reports the right line.
func TestLineNumbersAfterEscapedNewline(t *testing.T) {
	_, err := ParseQuery("R('a\\\nb' | x),\n$(y)")
	if err == nil {
		t.Fatal("ParseQuery should fail on $")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want it to report line 3 (escaped newline counted)", err)
	}
}

func TestFamilies(t *testing.T) {
	q1 := Q1()
	if got := q1.String(); !strings.Contains(got, "R(u | 'a', x)") {
		t.Errorf("Q1 rendering: %q", got)
	}
	q0 := Q0()
	if q0.Atoms[1].KeyLen != 2 || q0.Atoms[1].Arity() != 3 {
		t.Errorf("S0 signature wrong: %v", q0.Atoms[1])
	}
	for k := 2; k <= 5; k++ {
		c := Ck(k)
		if c.Len() != k {
			t.Errorf("C(%d) has %d atoms", k, c.Len())
		}
		ac := ACk(k)
		if ac.Len() != k+1 {
			t.Errorf("AC(%d) has %d atoms", k, ac.Len())
		}
		last := ac.Atoms[k]
		if !last.AllKey() || last.Arity() != k {
			t.Errorf("S%d must be all-key of arity %d: %v", k, k, last)
		}
		if ac.HasSelfJoin() || c.HasSelfJoin() {
			t.Error("families must be self-join-free")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ck(1) should panic")
			}
		}()
		Ck(1)
	}()
	tq := TerminalCyclesQuery()
	if tq.Len() != 7 {
		t.Errorf("TerminalCyclesQuery has %d atoms", tq.Len())
	}
	if TerminalCyclesBaseQuery().Len() != 6 {
		t.Error("base query should drop R0")
	}
	if ConferenceQuery().Len() != 2 {
		t.Error("conference query should have 2 atoms")
	}
}

// Property: printing then parsing any generated query is the identity.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	names := []string{"x", "y", "z", "u", "v"}
	consts := []string{"a", "b", "it's", `back\slash`}
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		numAtoms := 1 + next(4)
		atoms := make([]Atom, 0, numAtoms)
		for i := 0; i < numAtoms; i++ {
			arity := 1 + next(4)
			args := make([]Term, arity)
			for j := range args {
				if next(3) == 0 {
					args[j] = Const(consts[next(len(consts))])
				} else {
					args[j] = Var(names[next(len(names))])
				}
			}
			atoms = append(atoms, Atom{
				Rel:    "R" + string(rune('A'+i)),
				KeyLen: 1 + next(arity),
				Args:   args,
			})
		}
		q := Query{Atoms: atoms}
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Logf("parse error on %q: %v", q.String(), err)
			return false
		}
		return q.Equal(q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
