package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func ring(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if got := g.OutDegree(0); got != 1 {
		t.Errorf("parallel edges not collapsed: outdeg=%d", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(-1, 0) {
		t.Error("HasEdge wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range edge should panic")
			}
		}()
		g.AddEdge(0, 5)
	}()
}

func TestEdgesAndReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 1)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {2, 0}}
	if len(edges) != 2 || edges[0] != want[0] || edges[1] != want[1] {
		t.Errorf("Edges = %v", edges)
	}
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(0, 2) || r.HasEdge(0, 1) {
		t.Errorf("Reverse wrong: %v", r)
	}
}

func TestSCCs(t *testing.T) {
	// Two 2-cycles joined by a one-way edge, plus an isolated vertex.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("expected 3 SCCs, got %v", comps)
	}
	sizes := []int{}
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 2 {
		t.Errorf("SCC sizes = %v", sizes)
	}
	// Reverse topological order: the component of {2,3} must precede {0,1}.
	pos := map[int]int{}
	for i, c := range comps {
		for _, v := range c {
			pos[v] = i
		}
	}
	if pos[2] > pos[0] {
		t.Error("SCCs not in reverse topological order")
	}
}

func TestSCCsLargeChainNoOverflow(t *testing.T) {
	// A long path exercises the iterative Tarjan implementation.
	n := 200000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	if got := len(g.SCCs()); got != n {
		t.Errorf("expected %d singleton SCCs, got %d", n, got)
	}
}

func TestHasCycleAndTopoSort(t *testing.T) {
	dag := New(4)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 2)
	dag.AddEdge(0, 3)
	if dag.HasCycle() {
		t.Error("DAG reported cyclic")
	}
	order, ok := dag.TopoSort()
	if !ok || len(order) != 4 {
		t.Fatalf("TopoSort failed: %v %v", order, ok)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range dag.Edges() {
		if pos[e[0]] > pos[e[1]] {
			t.Errorf("topological order violated for edge %v", e)
		}
	}

	cyc := ring(3)
	if !cyc.HasCycle() {
		t.Error("3-ring reported acyclic")
	}
	if _, ok := cyc.TopoSort(); ok {
		t.Error("TopoSort should fail on a cycle")
	}

	loop := New(1)
	loop.AddEdge(0, 0)
	if !loop.HasCycle() {
		t.Error("self-loop reported acyclic")
	}
}

func TestReachableAndShortestPath(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	r := g.Reachable(0)
	if len(r) != 5 {
		t.Errorf("Reachable(0) = %v", r)
	}
	if _, ok := r[5]; ok {
		t.Error("5 should be unreachable")
	}
	p := g.ShortestPath(0, func(v int) bool { return v == 3 })
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("ShortestPath = %v", p)
	}
	if p := g.ShortestPath(5, func(v int) bool { return v == 0 }); p != nil {
		t.Errorf("unreachable goal should give nil, got %v", p)
	}
	if p := g.ShortestPath(2, func(v int) bool { return v == 2 }); len(p) != 1 {
		t.Errorf("trivial path = %v", p)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	sub, orig := g.Subgraph([]int{0, 1, 2})
	if sub.N() != 3 || len(orig) != 3 {
		t.Fatalf("Subgraph size wrong")
	}
	if !sub.HasCycle() {
		t.Error("triangle subgraph should be cyclic")
	}
	if len(sub.Edges()) != 3 {
		t.Errorf("subgraph edges = %v", sub.Edges())
	}
}

func TestElementaryCyclesTriangleAndTwoCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // 2-cycle
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1) // 3-cycle 1-2-3
	g.AddEdge(0, 0) // self-loop
	cycles := g.ElementaryCycles()
	byLen := map[int]int{}
	for _, c := range cycles {
		byLen[len(c)]++
	}
	if byLen[1] != 1 || byLen[2] != 1 || byLen[3] != 1 || len(cycles) != 3 {
		t.Errorf("cycles = %v", cycles)
	}
}

func TestElementaryCyclesComplete4(t *testing.T) {
	// K4 with all directed edges: #cycles = 20 (12 len-2? no: C(4,2)=6 len-2,
	// 8 len-3, 6 len-4 => 20).
	g := New(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	cycles := g.ElementaryCycles()
	byLen := map[int]int{}
	for _, c := range cycles {
		byLen[len(c)]++
	}
	if byLen[2] != 6 || byLen[3] != 8 || byLen[4] != 6 {
		t.Errorf("cycle census on K4 = %v", byLen)
	}
}

func TestCyclesOfLength(t *testing.T) {
	g := ring(6) // single 6-cycle
	if got := g.CyclesOfLength(6); len(got) != 1 {
		t.Errorf("6-ring should have one 6-cycle: %v", got)
	}
	if got := g.CyclesOfLength(3); len(got) != 0 {
		t.Errorf("6-ring has no 3-cycle: %v", got)
	}
	k4 := New(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				k4.AddEdge(i, j)
			}
		}
	}
	if got := k4.CyclesOfLength(3); len(got) != 8 {
		t.Errorf("K4 has 8 directed triangles, got %d", len(got))
	}
	// Every reported cycle must be valid and start at its smallest vertex.
	for _, c := range k4.CyclesOfLength(3) {
		for i := 0; i < len(c); i++ {
			if !k4.HasEdge(c[i], c[(i+1)%len(c)]) {
				t.Errorf("invalid cycle %v", c)
			}
		}
		if c[0] != min3(c) {
			t.Errorf("cycle %v does not start at smallest vertex", c)
		}
	}
}

func min3(c []int) int {
	m := c[0]
	for _, v := range c {
		if v < m {
			m = v
		}
	}
	return m
}

func TestHasCycleLongerThan(t *testing.T) {
	g := ring(6)
	w, ok := g.HasCycleLongerThan(3)
	if !ok {
		t.Fatal("6-ring has a cycle longer than 3")
	}
	if len(w) != 6 {
		t.Errorf("witness = %v", w)
	}
	for i := range w {
		if !g.HasEdge(w[i], w[(i+1)%len(w)]) {
			t.Errorf("witness %v is not a cycle", w)
		}
	}
	if _, ok := g.HasCycleLongerThan(6); ok {
		t.Error("6-ring has no cycle longer than 6")
	}
	if _, ok := ring(3).HasCycleLongerThan(3); ok {
		t.Error("3-ring has no cycle longer than 3")
	}
	// Two triangles sharing a vertex: longest elementary cycle is 3.
	g2 := New(5)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 0)
	g2.AddEdge(0, 3)
	g2.AddEdge(3, 4)
	g2.AddEdge(4, 0)
	if _, ok := g2.HasCycleLongerThan(3); ok {
		t.Error("two triangles sharing a vertex have no cycle > 3")
	}
	if _, ok := g2.HasCycleLongerThan(2); !ok {
		t.Error("triangles are longer than 2")
	}
}

func TestPathAvoiding(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	if !g.PathAvoiding(0, 2, map[int]struct{}{1: {}}) {
		t.Error("path 0-3-2 avoids vertex 1")
	}
	if g.PathAvoiding(0, 2, map[int]struct{}{1: {}, 3: {}}) {
		t.Error("no path avoiding both 1 and 3")
	}
	if !g.PathAvoiding(2, 2, map[int]struct{}{2: {}}) {
		t.Error("trivial path u==v always exists")
	}
	if g.PathAvoiding(0, 2, map[int]struct{}{0: {}}) {
		t.Error("forbidden start must fail")
	}
}

// Property: on random graphs, ElementaryCycles agrees with CyclesOfLength
// for every length, and HasCycle agrees with the census.
func TestQuickCycleCensusConsistency(t *testing.T) {
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		n := 2 + next(5)
		g := New(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(next(n), next(n))
		}
		all := g.ElementaryCycles()
		byLen := map[int]int{}
		for _, c := range all {
			byLen[len(c)]++
		}
		for k := 1; k <= n; k++ {
			if len(g.CyclesOfLength(k)) != byLen[k] {
				return false
			}
		}
		if g.HasCycle() != (len(all) > 0) {
			return false
		}
		maxLen := 0
		for _, c := range all {
			if len(c) > maxLen {
				maxLen = len(c)
			}
		}
		for k := 1; k <= n; k++ {
			if _, ok := g.HasCycleLongerThan(k); ok != (maxLen > k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
