package graph

// ElementaryCycles enumerates all elementary (simple) directed cycles using
// Johnson's algorithm. Each cycle is returned as a vertex sequence starting
// at its smallest vertex; the closing edge back to the first vertex is
// implicit. Self-loops yield length-1 cycles. Intended for query-sized
// attack graphs, where the number of cycles is small; callers working on
// fact-level graphs use the bounded searches instead.
func (g *Digraph) ElementaryCycles() [][]int {
	var cycles [][]int
	blocked := make([]bool, g.n)
	blockMap := make([]map[int]struct{}, g.n)
	var stack []int

	var unblock func(v int)
	unblock = func(v int) {
		blocked[v] = false
		for w := range blockMap[v] {
			delete(blockMap[v], w)
			if blocked[w] {
				unblock(w)
			}
		}
	}

	// circuit explores from v within the subgraph induced by vertices >= s
	// intersected with the SCC of s.
	var circuit func(v, s int, comp map[int]struct{}) bool
	circuit = func(v, s int, comp map[int]struct{}) bool {
		found := false
		stack = append(stack, v)
		blocked[v] = true
		for _, w := range g.adj[v] {
			if _, ok := comp[w]; !ok || w < s {
				continue
			}
			if w == s {
				cycles = append(cycles, append([]int(nil), stack...))
				found = true
			} else if !blocked[w] {
				if circuit(w, s, comp) {
					found = true
				}
			}
		}
		if found {
			unblock(v)
		} else {
			for _, w := range g.adj[v] {
				if _, ok := comp[w]; !ok || w < s {
					continue
				}
				if blockMap[w] == nil {
					blockMap[w] = make(map[int]struct{})
				}
				blockMap[w][v] = struct{}{}
			}
		}
		stack = stack[:len(stack)-1]
		return found
	}

	for s := 0; s < g.n; s++ {
		// Restrict to the SCC of s in the subgraph on vertices >= s.
		vertices := make([]int, 0, g.n-s)
		for v := s; v < g.n; v++ {
			vertices = append(vertices, v)
		}
		sub, orig := g.Subgraph(vertices)
		var comp map[int]struct{}
		for _, c := range sub.SCCs() {
			for _, v := range c {
				if orig[v] == s {
					comp = make(map[int]struct{}, len(c))
					for _, w := range c {
						comp[orig[w]] = struct{}{}
					}
				}
			}
			if comp != nil {
				break
			}
		}
		if len(comp) == 0 {
			continue
		}
		if len(comp) == 1 {
			if g.HasEdge(s, s) {
				cycles = append(cycles, []int{s})
			}
			continue
		}
		for v := range comp {
			blocked[v] = false
			blockMap[v] = nil
		}
		circuit(s, s, comp)
	}
	return cycles
}

// CyclesOfLength returns all elementary cycles of exactly length k, each as
// a vertex sequence of length k starting at its smallest vertex. It runs a
// depth-limited DFS from every vertex, O(n · d^k), matching the |V|^k bound
// used in the proof of Theorem 4 (k is a constant of the query, not of the
// data).
func (g *Digraph) CyclesOfLength(k int) [][]int {
	if k < 1 {
		return nil
	}
	var cycles [][]int
	path := make([]int, 0, k)
	onPath := make([]bool, g.n)
	var dfs func(start, v, depth int)
	dfs = func(start, v, depth int) {
		path = append(path, v)
		onPath[v] = true
		if depth == k {
			if g.HasEdge(v, start) {
				cycles = append(cycles, append([]int(nil), path...))
			}
		} else {
			for _, w := range g.adj[v] {
				// Only start each cycle at its smallest vertex to avoid
				// reporting rotations.
				if w > start && !onPath[w] {
					dfs(start, w, depth+1)
				}
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < g.n; s++ {
		if k == 1 {
			if g.HasEdge(s, s) {
				cycles = append(cycles, []int{s})
			}
			continue
		}
		dfs(s, s, 1)
	}
	return cycles
}

// HasCycleLongerThan reports whether the graph contains an elementary cycle
// of length strictly greater than k, using the characterization from the
// proof of Theorem 4: such a cycle exists iff there is a simple path
// a1,...,ak,a(k+1) with a1 != a(k+1) and a path from a(k+1) back to a1 that
// uses no edge leaving {a1,...,ak}. When found, it returns a witness: the
// full elementary cycle (prefix a1..ak followed by the return path without
// its final vertex a1).
func (g *Digraph) HasCycleLongerThan(k int) (witness []int, ok bool) {
	prefix := make([]int, 0, k+1)
	onPath := make([]bool, g.n)
	var found []int
	var dfs func(v, depth int) bool
	dfs = func(v, depth int) bool {
		prefix = append(prefix, v)
		onPath[v] = true
		defer func() {
			onPath[v] = false
			prefix = prefix[:len(prefix)-1]
		}()
		if depth == k+1 {
			first, last := prefix[0], prefix[k]
			forbidden := make(map[int]struct{}, k)
			for _, x := range prefix[:k] {
				forbidden[x] = struct{}{}
			}
			ret := g.pathAvoidingPath(last, first, forbidden)
			if ret == nil {
				return false
			}
			// The cycle is prefix[0..k-1] + ret (ret starts at last and ends
			// just before first).
			found = append(append([]int(nil), prefix[:k]...), ret...)
			return true
		}
		for _, w := range g.adj[v] {
			if !onPath[w] {
				if dfs(w, depth+1) {
					return true
				}
			}
		}
		return false
	}
	for s := 0; s < g.n; s++ {
		if dfs(s, 1) {
			return found, true
		}
	}
	return nil, false
}

// pathAvoidingPath returns a path from u to v (u included, v excluded) whose
// every intermediate vertex (and u) is outside forbiddenSources, or nil.
// The returned path's vertices are pairwise distinct and disjoint from
// forbiddenSources, so appending it to the forbidden prefix forms an
// elementary cycle.
func (g *Digraph) pathAvoidingPath(u, v int, forbiddenSources map[int]struct{}) []int {
	if _, bad := forbiddenSources[u]; bad {
		return nil
	}
	if u == v {
		return []int{}
	}
	prev := make(map[int]int, g.n)
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[x] {
			if w == v {
				path := []int{}
				for y := x; ; y = prev[y] {
					path = append(path, y)
					if y == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			if _, bad := forbiddenSources[w]; bad {
				continue
			}
			if _, seen := prev[w]; !seen {
				prev[w] = x
				queue = append(queue, w)
			}
		}
	}
	return nil
}
