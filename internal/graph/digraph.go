// Package graph provides the directed-graph algorithms the solvers rely on:
// strongly connected components (Tarjan), elementary-cycle enumeration
// (Johnson), reachability and constrained path searches. Vertices are dense
// integer IDs managed by the caller (the attack graph and the Theorem 4
// algorithm both maintain their own vertex naming).
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph on vertices 0..N-1 with adjacency lists.
// Parallel edges are collapsed; self-loops are allowed.
type Digraph struct {
	n   int
	adj [][]int
	has []map[int]struct{}
}

// New returns an empty digraph on n vertices.
func New(n int) *Digraph {
	return &Digraph{
		n:   n,
		adj: make([][]int, n),
		has: make([]map[int]struct{}, n),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts the edge u→v (idempotent).
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if g.has[u] == nil {
		g.has[u] = make(map[int]struct{})
	}
	if _, ok := g.has[u][v]; ok {
		return
	}
	g.has[u][v] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
}

// HasEdge reports whether u→v is present.
func (g *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	_, ok := g.has[u][v]
	return ok
}

// Succ returns the successors of u. The returned slice must not be modified.
func (g *Digraph) Succ(u int) []int { return g.adj[u] }

// OutDegree returns the number of successors of u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// InDegrees returns the in-degree of every vertex.
func (g *Digraph) InDegrees() []int {
	in := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			in[v]++
		}
	}
	return in
}

// Edges returns all edges sorted lexicographically.
func (g *Digraph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Reverse returns the graph with all edges reversed.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			r.AddEdge(v, u)
		}
	}
	return r
}

// Subgraph returns the induced subgraph on the given vertices together with
// the mapping from new IDs to original IDs.
func (g *Digraph) Subgraph(vertices []int) (*Digraph, []int) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(vertices))
	for _, u := range vertices {
		for _, v := range g.adj[u] {
			if j, ok := idx[v]; ok {
				sub.AddEdge(idx[u], j)
			}
		}
	}
	return sub, orig
}

// SCCs returns the strongly connected components in reverse topological
// order (Tarjan). Each component lists its vertices in discovery order.
func (g *Digraph) SCCs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		comps  [][]int
		nextID int
	)
	// Iterative Tarjan to avoid stack overflows on large fact graphs.
	type frame struct {
		v, childIdx int
	}
	for start := 0; start < g.n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = nextID
				low[v] = nextID
				nextID++
				stack = append(stack, v)
				onStack[v] = true
			}
			recursed := false
			for f.childIdx < len(g.adj[v]) {
				w := g.adj[v][f.childIdx]
				f.childIdx++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					recursed = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if recursed {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

// HasCycle reports whether the graph contains a directed cycle (including
// self-loops).
func (g *Digraph) HasCycle() bool {
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			return true
		}
		v := comp[0]
		if g.HasEdge(v, v) {
			return true
		}
	}
	return false
}

// TopoSort returns a topological order of the vertices, or ok=false if the
// graph has a cycle.
func (g *Digraph) TopoSort() (order []int, ok bool) {
	in := g.InDegrees()
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if in[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			in[w]--
			if in[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == g.n
}

// Reachable returns the set of vertices reachable from start (including
// start itself).
func (g *Digraph) Reachable(start int) map[int]struct{} {
	seen := map[int]struct{}{start: {}}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// ShortestPath returns a shortest path (by edge count) from u to any vertex
// satisfying goal, or nil if none is reachable. The path includes both
// endpoints; if goal(u) holds the path is [u].
func (g *Digraph) ShortestPath(u int, goal func(int) bool) []int {
	if goal(u) {
		return []int{u}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if prev[w] != -1 {
				continue
			}
			prev[w] = v
			if goal(w) {
				path := []int{w}
				for x := v; ; x = prev[x] {
					path = append(path, x)
					if x == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// PathAvoiding reports whether there is a path from u to v that uses no edge
// whose source is in forbiddenSources (edges out of v itself are never
// needed; u ∈ forbiddenSources makes the search fail unless u == v). This is
// the test used by the Theorem 4 algorithm to find elementary cycles of
// length greater than k.
func (g *Digraph) PathAvoiding(u, v int, forbiddenSources map[int]struct{}) bool {
	if u == v {
		return true
	}
	if _, bad := forbiddenSources[u]; bad {
		return false
	}
	seen := map[int]struct{}{u: {}}
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, bad := forbiddenSources[x]; bad {
			continue
		}
		for _, w := range g.adj[x] {
			if w == v {
				return true
			}
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				stack = append(stack, w)
			}
		}
	}
	return false
}

// String renders the graph compactly for debugging.
func (g *Digraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph(%d)", g.n)
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			continue
		}
		succ := append([]int(nil), g.adj[u]...)
		sort.Ints(succ)
		fmt.Fprintf(&b, " %d→%v", u, succ)
	}
	return b.String()
}
