package solver

import (
	"context"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/shard"
)

// BatchItem is one CERTAINTY(q) instance of a batch: a query and the
// database to decide it on. Items may share databases (snapshot reuse) or
// queries (plan reuse); SolveBatch amortizes both.
type BatchItem struct {
	Query cq.Query
	DB    *db.DB
}

// BatchResult is the outcome of one batch item. Exactly one of Verdict and
// Err is meaningful: Err is non-nil when the item failed outright (e.g. an
// unclassifiable query), in which case Verdict is the zero value. A
// degradation (budget or deadline cutoff) is not an error — it comes back as
// a Verdict with OutcomeUnknown, same as in a single Solve.
type BatchResult struct {
	Index   int
	Verdict Verdict
	Err     error
}

const metricBatchItems = "solver_batch_items_total"

func init() {
	obs.Default.Help(metricBatchItems, "Batch items solved, by outcome (error for failed items).")
}

// planMemo compiles each distinct canonical query once per batch. When the
// caller supplied a PlanSource it is consulted first (so batches share the
// process-wide cache); otherwise compilation results — including failures —
// are memoized locally for the duration of the batch.
type planMemo struct {
	source PlanSource
	mu     sync.Mutex
	plans  map[string]*Plan
	errs   map[string]error
}

func (m *planMemo) get(ctx context.Context, q cq.Query) (*Plan, error) {
	key := cq.CanonicalKey(q)
	m.mu.Lock()
	if p, ok := m.plans[key]; ok {
		m.mu.Unlock()
		return p, nil
	}
	if err, ok := m.errs[key]; ok {
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Unlock()

	var p *Plan
	var err error
	if m.source != nil {
		p, err = m.source.Get(ctx, q)
	} else {
		p, err = CompilePlan(q)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.errs[key] = err
		return nil, err
	}
	m.plans[key] = p
	return p, nil
}

// SolveBatch decides a batch of instances on the bounded worker pool,
// amortizing plan compilation across items with the same canonical query
// (one classification and one compiled rewriting per distinct query, via
// WithPlanCache's source when given, a batch-local memo otherwise). Items
// run concurrently — the fan-out shares the process-wide worker gate with
// the shard layer, so WithShards composes without multiplying goroutines —
// and results come back indexed in item order, one per item, errors inline.
//
// WithObserver streams each result as its item completes, before the call
// returns; see the option for the ordering contract. A cancelled ctx stops
// the fan-out: unstarted items report ctx's error.
func SolveBatch(ctx context.Context, items []BatchItem, opts ...Option) []BatchResult {
	cfg := newConfig(opts)
	results := make([]BatchResult, len(items))
	for i := range results {
		results[i] = BatchResult{Index: i, Err: ctx.Err()}
		if results[i].Err == nil {
			results[i].Err = context.Canceled // overwritten when the item runs
		}
	}
	memo := &planMemo{
		source: cfg.plans,
		plans:  make(map[string]*Plan),
		errs:   make(map[string]error),
	}
	var obsMu sync.Mutex
	_ = shard.ForEach(ctx, len(items), func(i int) {
		ictx, sp := obs.StartSpan(ctx, "batch/item")
		sp.SetInt("item", int64(i))
		r := BatchResult{Index: i}
		p, err := memo.get(ictx, items[i].Query)
		if err == nil {
			if cfg.shards != 0 {
				r.Verdict, err = p.SolveSharded(ictx, items[i].DB, cfg.shards, cfg.opts)
			} else {
				r.Verdict, err = p.SolveCtx(ictx, items[i].DB, cfg.opts)
			}
		}
		r.Err = err
		if err != nil {
			sp.SetAttr("error", err.Error())
			obs.Default.Counter(metricBatchItems, obs.L{K: "outcome", V: "error"}).Inc()
		} else {
			sp.SetAttr("outcome", outcomeCodes[r.Verdict.Outcome])
			obs.Default.Counter(metricBatchItems, obs.L{K: "outcome", V: outcomeCodes[r.Verdict.Outcome]}).Inc()
		}
		sp.End()
		results[i] = r
		if cfg.observe != nil {
			obsMu.Lock()
			cfg.observe(r)
			obsMu.Unlock()
		}
	})
	return results
}
