package solver

import (
	"context"
	"fmt"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/jointree"
)

// unifyAtomFact unifies (possibly partially ground) atom a with fact f and
// returns the valuation over vars(a) induced by f.
func unifyAtomFact(a cq.Atom, f db.Fact) (cq.Valuation, bool) {
	if a.Rel != f.Rel || len(a.Args) != len(f.Args) || a.KeyLen != f.KeyLen {
		return nil, false
	}
	v := make(cq.Valuation)
	for i, t := range a.Args {
		if t.IsConst {
			if t.Value != f.Args[i] {
				return nil, false
			}
			continue
		}
		if prev, ok := v[t.Value]; ok {
			if prev != f.Args[i] {
				return nil, false
			}
			continue
		}
		v[t.Value] = f.Args[i]
	}
	return v, true
}

// CertainFO decides db ∈ CERTAINTY(q) for queries whose attack graph is
// acyclic, by executing the certain first-order rewriting of Theorem 1
// directly against the database: pick an unattacked atom F of relation R;
// the query is certain iff some R-block exists in which every fact unifies
// with F and makes the instantiated remainder certain. Substituting
// constants and removing F preserve acyclicity of the attack graph
// (Lemma 5), so the recursion always finds an unattacked atom.
//
// The attack graph depends only on the positions of variables, not on
// which constants fill the ground positions, so the unattacked-atom choice
// is memoized per query shape: each recursion level builds the attack
// graph once instead of once per candidate fact.
//
// The returned error reports queries outside the method's scope (cyclic
// attack graph, self-join, cyclic query).
func CertainFO(q cq.Query, d *db.DB) (bool, error) {
	return CertainFOCtx(context.Background(), q, d)
}

// CertainFOCtx is CertainFO with cooperative cancellation: one governor
// step is charged per recursive rewriting step.
func CertainFOCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	memo := make(map[string]int)
	return certainFO(govern.From(ctx), q, d, memo)
}

// shapeKey renders q with every constant replaced by a placeholder; two
// queries with the same key have identical attack graphs.
func shapeKey(q cq.Query) string {
	masked := make([]cq.Atom, q.Len())
	for i, a := range q.Atoms {
		args := make([]cq.Term, len(a.Args))
		for j, t := range a.Args {
			if t.IsConst {
				args[j] = cq.Const("▢")
			} else {
				args[j] = t
			}
		}
		masked[i] = cq.Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
	}
	return cq.Query{Atoms: masked}.String()
}

func certainFO(g *govern.Governor, q cq.Query, d *db.DB, memo map[string]int) (bool, error) {
	if err := g.Step(); err != nil {
		return false, err
	}
	if q.IsEmpty() {
		return true, nil
	}
	key := shapeKey(q)
	idx, ok := memo[key]
	if !ok {
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return false, err
		}
		un := g.Unattacked()
		if len(un) == 0 {
			return false, fmt.Errorf("solver: CertainFO requires an acyclic attack graph: %s", q)
		}
		idx = un[0]
		memo[key] = idx
	}
	F := q.Atoms[idx]
	rest := q.Without(idx)
	for _, block := range candidateBlocks(d, F) {
		blockOK := true
		for _, A := range block {
			theta, ok := unifyAtomFact(F, A)
			if !ok {
				blockOK = false
				break
			}
			sub, err := certainFO(g, rest.Substitute(theta), d, memo)
			if err != nil {
				return false, err
			}
			if !sub {
				blockOK = false
				break
			}
		}
		if blockOK {
			return true, nil
		}
	}
	return false, nil
}

// blocksOf returns the blocks of the given relation.
func blocksOf(d *db.DB, rel string) [][]db.Fact {
	var out [][]db.Fact
	seen := make(map[string]bool)
	for _, f := range d.FactsOf(rel) {
		bid := f.BlockID()
		if seen[bid] {
			continue
		}
		seen[bid] = true
		out = append(out, d.Block(f))
	}
	return out
}

// candidateBlocks returns the blocks of a's relation that can possibly
// match a. When a's primary key is ground (the common case in recursive
// calls, where the parent atom's valuation instantiated the key), the block
// index narrows the search to a single block.
func candidateBlocks(d *db.DB, a cq.Atom) [][]db.Fact {
	key := make([]string, a.KeyLen)
	for i := 0; i < a.KeyLen; i++ {
		if a.Args[i].IsVar() {
			return blocksOf(d, a.Rel)
		}
		key[i] = a.Args[i].Value
	}
	block := d.Block(db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: key})
	if len(block) == 0 {
		return nil
	}
	return [][]db.Fact{block}
}
