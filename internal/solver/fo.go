package solver

import (
	"context"
	"fmt"
	"sync"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/jointree"
)

// unifyAtomFact unifies (possibly partially ground) atom a with fact f and
// returns the valuation over vars(a) induced by f.
func unifyAtomFact(a cq.Atom, f db.Fact) (cq.Valuation, bool) {
	v := make(cq.Valuation)
	if !unifyAtomFactInto(a, f, v) {
		return nil, false
	}
	return v, true
}

// unifyAtomFactInto is unifyAtomFact writing into a caller-provided (empty)
// valuation, so hot loops can reuse pooled maps instead of allocating one
// per candidate fact. On failure the map may hold partial bindings; the
// caller clears it before reuse.
func unifyAtomFactInto(a cq.Atom, f db.Fact, v cq.Valuation) bool {
	if a.Rel != f.Rel || len(a.Args) != len(f.Args) || a.KeyLen != f.KeyLen {
		return false
	}
	for i, t := range a.Args {
		if t.IsConst {
			if t.Value != f.Args[i] {
				return false
			}
			continue
		}
		if prev, ok := v[t.Value]; ok {
			if prev != f.Args[i] {
				return false
			}
			continue
		}
		v[t.Value] = f.Args[i]
	}
	return true
}

// valuationPool recycles the scratch valuations of the FO rewriting's hot
// recursion. A valuation is returned to the pool as soon as the recursive
// call that consumed it returns; Substitute copies bindings into fresh
// atoms, so nothing retains the map.
var valuationPool = sync.Pool{
	New: func() any { return make(cq.Valuation, 8) },
}

func getValuation() cq.Valuation { return valuationPool.Get().(cq.Valuation) }

func putValuation(v cq.Valuation) {
	clear(v)
	valuationPool.Put(v)
}

// shapePlaceholder stands in for every constant when only the query's shape
// matters: the attack graph depends on the positions of variables, not on
// which constants fill the ground positions.
const shapePlaceholder = "▢"

// FOProgram is the compiled static shape of the Theorem 1 rewriting: the
// sequence of unattacked-atom choices the recursion makes, computed once
// per query. At recursion depth L the residual query always has the same
// shape — the same atoms minus the first L eliminated ones, with exactly
// the variables of the eliminated atoms grounded — so the unattacked-atom
// choice at each depth is a function of the original query alone. Compiling
// it eagerly removes the per-call shape-key rendering and attack-graph
// memoization from the hot recursion entirely.
//
// A program is immutable and safe for concurrent use; compile once per
// canonical query (the plan cache does) and reuse across databases.
//
// Beyond the residual-index steps driving the string-indexed recursion, the
// program carries an interned schedule (sched, constRefs, nslots, maxKey —
// see fo_interned.go): each level's arguments lowered to constant-ordinal /
// bound-slot / bind-slot operations against the columnar view, so the hot
// recursion runs over uint32 ids with zero allocations.
type FOProgram struct {
	steps []int // steps[L] = index, within the depth-L residual query, of the atom to eliminate

	sched     []foStep   // interned schedule, one entry per level
	constRefs []constRef // constant ordinal → (atom, pos) in the runtime query
	nslots    int        // variable slots of the interned environment
	maxKey    int        // widest key probed by any keyReady level
}

// CompileFO builds the FO rewriting program for q. It fails exactly where
// CertainFO would: on queries whose attack graph is cyclic (or whose
// residuals ever lose all unattacked atoms, which Lemma 5 rules out for
// acyclic attack graphs).
func CompileFO(q cq.Query) (*FOProgram, error) {
	// Mask constants so the simulation works on the pure shape.
	cur := maskShape(q)
	p := &FOProgram{steps: make([]int, 0, q.Len())}
	// orig maps residual indices back to original atom indices; slots
	// accumulates the variables grounded by eliminated atoms, which is
	// exactly the statically-known bound set at each level.
	orig := make([]int, q.Len())
	for i := range orig {
		orig[i] = i
	}
	slots := make(map[string]uint16)
	for !cur.IsEmpty() {
		g, err := core.BuildAttackGraph(cur, jointree.TieBreakLex)
		if err != nil {
			return nil, err
		}
		un := g.Unattacked()
		if len(un) == 0 {
			return nil, fmt.Errorf("solver: CertainFO requires an acyclic attack graph: %s", cur)
		}
		idx := un[0]
		F := cur.Atoms[idx]
		theta := make(cq.Valuation)
		for _, t := range F.Args {
			if t.IsVar() {
				theta[t.Value] = shapePlaceholder
			}
		}
		p.compileStep(q, orig[idx], slots)
		orig = append(orig[:idx], orig[idx+1:]...)
		cur = cur.Without(idx).Substitute(theta)
		p.steps = append(p.steps, idx)
	}
	return p, nil
}

// maskShape replaces every constant of q with the shape placeholder.
func maskShape(q cq.Query) cq.Query {
	masked := make([]cq.Atom, q.Len())
	for i, a := range q.Atoms {
		args := make([]cq.Term, len(a.Args))
		for j, t := range a.Args {
			if t.IsConst {
				args[j] = cq.Const(shapePlaceholder)
			} else {
				args[j] = t
			}
		}
		masked[i] = cq.Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
	}
	return cq.Query{Atoms: masked}
}

// Certain decides db ∈ CERTAINTY(q) for the query the program was compiled
// for (or any query with the same shape).
func (p *FOProgram) Certain(q cq.Query, d *db.DB) (bool, error) {
	return p.CertainCtx(context.Background(), q, d)
}

// CertainCtx is Certain with cooperative cancellation: one governor step is
// charged per recursive rewriting step, exactly as in CertainFOCtx. It runs
// on the interned plane unless SetInterned has deselected it.
func (p *FOProgram) CertainCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	if q.Len() != len(p.steps) {
		return false, fmt.Errorf("solver: FO program compiled for %d atoms applied to %d-atom query", len(p.steps), q.Len())
	}
	if internedOn.Load() {
		return p.certainInterned(govern.From(ctx), q, d)
	}
	return p.run(govern.From(ctx), q, d, 0)
}

// CertainIndexed decides certainty on the string-indexed plane regardless of
// the knob — the reference the interned plane is differentially tested
// against, and the "indexed" column of the certbench triple.
func (p *FOProgram) CertainIndexed(q cq.Query, d *db.DB) (bool, error) {
	return p.CertainIndexedCtx(context.Background(), q, d)
}

// CertainIndexedCtx is CertainIndexed with cooperative cancellation.
func (p *FOProgram) CertainIndexedCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	if q.Len() != len(p.steps) {
		return false, fmt.Errorf("solver: FO program compiled for %d atoms applied to %d-atom query", len(p.steps), q.Len())
	}
	return p.run(govern.From(ctx), q, d, 0)
}

func (p *FOProgram) run(g *govern.Governor, q cq.Query, d *db.DB, level int) (bool, error) {
	if err := g.Step(); err != nil {
		return false, err
	}
	return p.stepped(g, q, d, level)
}

// stepped is run after its governor step has been charged; CertainFOCtx
// uses it to poll the governor before compiling, preserving the seed
// behavior that cancellation surfaces ahead of scope errors.
func (p *FOProgram) stepped(g *govern.Governor, q cq.Query, d *db.DB, level int) (bool, error) {
	if q.IsEmpty() {
		return true, nil
	}
	idx := p.steps[level]
	F := q.Atoms[idx]
	rest := q.Without(idx)
	for _, block := range candidateBlocks(d, F) {
		blockOK := true
		for _, A := range block {
			theta := getValuation()
			if !unifyAtomFactInto(F, A, theta) {
				putValuation(theta)
				blockOK = false
				break
			}
			next := rest
			if len(theta) > 0 {
				next = rest.Substitute(theta)
			}
			putValuation(theta)
			sub, err := p.run(g, next, d, level+1)
			if err != nil {
				return false, err
			}
			if !sub {
				blockOK = false
				break
			}
		}
		if blockOK {
			return true, nil
		}
	}
	return false, nil
}

// CertainFO decides db ∈ CERTAINTY(q) for queries whose attack graph is
// acyclic, by executing the certain first-order rewriting of Theorem 1
// directly against the database: pick an unattacked atom F of relation R;
// the query is certain iff some R-block exists in which every fact unifies
// with F and makes the instantiated remainder certain. Substituting
// constants and removing F preserve acyclicity of the attack graph
// (Lemma 5), so the recursion always finds an unattacked atom.
//
// The unattacked-atom choices depend only on the query's shape, so they are
// compiled once into an FOProgram and the recursion itself does no graph
// work; candidate blocks come from the database's memoized per-relation
// block index. Callers solving the same query repeatedly should compile
// (or use the plan cache) once and reuse the program.
//
// The returned error reports queries outside the method's scope (cyclic
// attack graph, self-join, cyclic query).
func CertainFO(q cq.Query, d *db.DB) (bool, error) {
	return CertainFOCtx(context.Background(), q, d)
}

// CertainFOCtx is CertainFO with cooperative cancellation: one governor
// step is charged per recursive rewriting step. The first step is charged
// before compilation so that cancellation surfaces ahead of scope errors,
// exactly as in the uncompiled recursion.
func CertainFOCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	g := govern.From(ctx)
	if err := g.Step(); err != nil {
		return false, err
	}
	p, err := CompileFO(q)
	if err != nil {
		return false, err
	}
	if internedOn.Load() {
		return p.steppedInterned(g, q, d)
	}
	return p.stepped(g, q, d, 0)
}

// CertainFOBaseline is the pre-index reference implementation of CertainFO:
// it re-derives the relation's block list on every recursive step and
// memoizes unattacked-atom choices lazily per rendered shape key, exactly
// as the seed revision did. Retained as the differential-testing oracle and
// the "seed" column of the certbench performance baseline; production
// callers should use CertainFO.
func CertainFOBaseline(q cq.Query, d *db.DB) (bool, error) {
	return CertainFOBaselineCtx(context.Background(), q, d)
}

// CertainFOBaselineCtx is CertainFOBaseline with cooperative cancellation.
func CertainFOBaselineCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	memo := make(map[string]int)
	return certainFOBaseline(govern.From(ctx), q, d, memo)
}

// shapeKey renders q with every constant replaced by a placeholder; two
// queries with the same key have identical attack graphs.
func shapeKey(q cq.Query) string {
	return maskShape(q).String()
}

func certainFOBaseline(g *govern.Governor, q cq.Query, d *db.DB, memo map[string]int) (bool, error) {
	if err := g.Step(); err != nil {
		return false, err
	}
	if q.IsEmpty() {
		return true, nil
	}
	key := shapeKey(q)
	idx, ok := memo[key]
	if !ok {
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return false, err
		}
		un := g.Unattacked()
		if len(un) == 0 {
			return false, fmt.Errorf("solver: CertainFO requires an acyclic attack graph: %s", q)
		}
		idx = un[0]
		memo[key] = idx
	}
	F := q.Atoms[idx]
	rest := q.Without(idx)
	for _, block := range candidateBlocksSeed(d, F) {
		blockOK := true
		for _, A := range block {
			theta, ok := unifyAtomFact(F, A)
			if !ok {
				blockOK = false
				break
			}
			sub, err := certainFOBaseline(g, rest.Substitute(theta), d, memo)
			if err != nil {
				return false, err
			}
			if !sub {
				blockOK = false
				break
			}
		}
		if blockOK {
			return true, nil
		}
	}
	return false, nil
}

// blocksOfSeed re-derives the blocks of the given relation from a full
// relation scan, as the seed revision did on every recursive step. Kept
// only for the baseline path; indexed callers use db.DB.BlocksOf.
func blocksOfSeed(d *db.DB, rel string) [][]db.Fact {
	var out [][]db.Fact
	seen := make(map[string]bool)
	for _, f := range d.FactsOf(rel) {
		bid := f.BlockID()
		if seen[bid] {
			continue
		}
		seen[bid] = true
		out = append(out, d.Block(f))
	}
	return out
}

// candidateBlocks returns the blocks of a's relation that can possibly
// match a, from the database's memoized index. When a's primary key is
// ground (the common case in recursive calls, where the parent atom's
// valuation instantiated the key), the block index narrows the search to a
// single block. The returned blocks are shared slices; callers must not
// modify them.
func candidateBlocks(d *db.DB, a cq.Atom) [][]db.Fact {
	key := make([]string, a.KeyLen)
	for i := 0; i < a.KeyLen; i++ {
		if a.Args[i].IsVar() {
			return d.BlocksOf(a.Rel)
		}
		key[i] = a.Args[i].Value
	}
	block := d.BlockView(db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: key})
	if len(block) == 0 {
		return nil
	}
	return [][]db.Fact{block}
}

// candidateBlocksSeed is candidateBlocks without the memoized index,
// re-deriving block lists per call; kept for the baseline path.
func candidateBlocksSeed(d *db.DB, a cq.Atom) [][]db.Fact {
	key := make([]string, a.KeyLen)
	for i := 0; i < a.KeyLen; i++ {
		if a.Args[i].IsVar() {
			return blocksOfSeed(d, a.Rel)
		}
		key[i] = a.Args[i].Value
	}
	block := d.Block(db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: key})
	if len(block) == 0 {
		return nil
	}
	return [][]db.Fact{block}
}
