package solver

import (
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Simplification rewrites a CERTAINTY instance (q, db) into an equivalent
// one with a simpler query. The one rule implemented projects away private
// non-key columns:
//
// If an atom F has non-key arguments that are distinct variables occurring
// nowhere else in q (and only once in F), then whether a repair satisfies q
// never depends on *which* fact of an F-block is chosen — any fact of a
// block with a matching key witnesses the atom. The instance is therefore
// equivalent to one where F is replaced by an all-key atom over its key
// arguments and F's relation is projected onto its keys (one fact per
// block).
//
// The rule can move an instance across the complexity chart: the §6.2
// open-case query {R1(x|y), R2(y|x), S(x,y|z)} becomes AC(2), which
// Theorem 4 decides in polynomial time — consistent with (and evidence
// for) Conjecture 1.
type Simplification struct {
	// Projected lists the relations whose non-key columns were dropped.
	Projected []string `json:"projected"`
}

// simplifyProjection applies the private-column projection rule to every
// eligible atom, returning the rewritten query, a database rewriter, and a
// report. The rewriter must be applied to any database before solving the
// simplified query.
func simplifyProjection(q cq.Query) (cq.Query, func(*db.DB) (*db.DB, error), *Simplification) {
	// Count variable occurrences across the whole query (all positions).
	occurrences := make(map[string]int)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				occurrences[t.Value]++
			}
		}
	}
	type projection struct {
		rel           string
		keyLen, arity int
	}
	var projected []projection
	atoms := make([]cq.Atom, 0, q.Len())
	for _, a := range q.Atoms {
		if a.AllKey() {
			atoms = append(atoms, a)
			continue
		}
		eligible := true
		for _, t := range a.NonKeyArgs() {
			if t.IsConst || occurrences[t.Value] != 1 {
				eligible = false
				break
			}
		}
		if !eligible {
			atoms = append(atoms, a)
			continue
		}
		keyArgs := append([]cq.Term(nil), a.KeyArgs()...)
		atoms = append(atoms, cq.Atom{Rel: a.Rel, KeyLen: a.KeyLen, Args: keyArgs})
		projected = append(projected, projection{rel: a.Rel, keyLen: a.KeyLen, arity: a.Arity()})
	}
	if len(projected) == 0 {
		return q, nil, nil
	}
	byRel := make(map[string]projection, len(projected))
	report := &Simplification{}
	for _, p := range projected {
		byRel[p.rel] = p
		report.Projected = append(report.Projected, p.rel)
	}
	rewrite := func(d *db.DB) (*db.DB, error) {
		out := db.New()
		for _, f := range d.Facts() {
			p, ok := byRel[f.Rel]
			if !ok {
				if err := out.Add(f); err != nil {
					return nil, err
				}
				continue
			}
			if f.KeyLen != p.keyLen || len(f.Args) != p.arity {
				// Signature mismatch with the query atom: such facts never
				// match it, and after projection they must not fabricate
				// all-key facts either — drop them.
				continue
			}
			key := append([]string(nil), f.Args[:p.keyLen]...)
			if err := out.Add(db.Fact{Rel: f.Rel, KeyLen: p.keyLen, Args: key}); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return cq.Query{Atoms: atoms}, rewrite, report
}
