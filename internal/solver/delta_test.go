package solver

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/shard"
	"github.com/cqa-go/certainty/internal/wal"
)

// deltaShardCounts are the shard caps the delta differential suite sweeps:
// no sharding benefit (1), minimal (2), the host's parallelism, and more
// shards than any instance has co-occurrence groups (so every group is its
// own shard).
func deltaShardCounts() []int {
	return []int{1, 2, runtime.NumCPU(), 1 << 10}
}

// deltaScenarios are the query families the delta suite mutates under:
// the FO-rewritable chain, a disconnected query (conjunction across
// components plus a noise relation), and the coNP-complete falsifying
// search.
func deltaScenarios() []struct {
	name string
	q    cq.Query
} {
	return []struct {
		name string
		q    cq.Query
	}{
		{"fo-chain", cq.MustParseQuery("R(x | y), S(y | z)")},
		{"disconnected", cq.MustParseQuery("R(x | y), S(y | z), U(u | v)")},
		{"conp", cq.Q0()},
	}
}

// randomFactFor draws a fact matching one of q's atom signatures with
// arguments from a small domain — small enough that inserts collide with
// existing blocks (the interesting case for block-granular invalidation).
func randomFactFor(q cq.Query, r *rand.Rand) db.Fact {
	a := q.Atoms[r.Intn(len(q.Atoms))]
	args := make([]string, len(a.Args))
	for i := range args {
		args[i] = string(rune('a' + r.Intn(3)))
	}
	return db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: args}
}

// mutationStep draws one random mutation batch against model (biased toward
// growth), in reproducible order.
func mutationStep(q cq.Query, model map[string]db.Fact, r *rand.Rand) (ins, del []db.Fact) {
	if r.Intn(3) > 0 || len(model) == 0 {
		for n := 1 + r.Intn(3); n > 0; n-- {
			ins = append(ins, randomFactFor(q, r))
		}
		return ins, del
	}
	ids := make([]string, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if r.Intn(3) == 0 {
			del = append(del, model[id])
		}
	}
	if len(del) == 0 {
		ins = append(ins, randomFactFor(q, r))
	}
	return ins, del
}

// TestDeltaResolveEquivalence is the delta re-solve differential property:
// a database grown through a random interleaving of durable inserts,
// deletes, and solves yields — via Plan.Resolve with a persistent shard
// memo — verdicts, repair counts, and probabilities byte-identical to a
// from-scratch full re-solve of the surviving facts, across scenario
// families, every shard count under test, and both data planes. The memos
// live across all steps of a schedule, so stale reuse after any mutation
// pattern would surface as a divergence.
func TestDeltaResolveEquivalence(t *testing.T) {
	ctx := context.Background()
	defer SetInternedDataPlane(true)
	for _, interned := range []bool{true, false} {
		SetInternedDataPlane(interned)
		for _, sc := range deltaScenarios() {
			for seed := int64(0); seed < 2; seed++ {
				sc, seed := sc, seed
				t.Run(fmt.Sprintf("interned=%v/%s/seed%d", interned, sc.name, seed), func(t *testing.T) {
					r := rand.New(rand.NewSource(9091 + seed*7717))
					st, err := wal.Open(wal.Options{
						Dir:      t.TempDir(),
						Fsync:    wal.FsyncNever,
						Registry: obs.NewRegistry(),
					})
					if err != nil {
						t.Fatalf("wal.Open: %v", err)
					}
					defer st.Close()

					p, err := CompilePlan(sc.q)
					if err != nil {
						t.Fatalf("CompilePlan: %v", err)
					}
					memos := make(map[int]*ShardMemo, len(deltaShardCounts()))
					for _, n := range deltaShardCounts() {
						memos[n] = NewShardMemo(0, nil)
					}
					countMemo := prob.NewCountMemo(0, nil)

					model := map[string]db.Fact{}
					for step := 0; step < 10; step++ {
						ins, del := mutationStep(sc.q, model, r)
						if _, _, err := st.Mutate(ins, del, -1); err != nil {
							t.Fatalf("step %d: Mutate: %v", step, err)
						}
						for _, f := range del {
							delete(model, f.ID())
						}
						for _, f := range ins {
							model[f.ID()] = f
						}

						rebuilt := db.New()
						for _, f := range model {
							if err := rebuilt.Add(f); err != nil {
								t.Fatalf("rebuild add %v: %v", f, err)
							}
						}
						full, err := SolveCtx(ctx, sc.q, rebuilt, Options{})
						if err != nil {
							t.Fatalf("step %d: full re-solve: %v", step, err)
						}
						want := verdictFingerprint(t, full)

						durable, version := st.DB()
						delta := Delta{Ins: ins, Del: del}
						for _, n := range deltaShardCounts() {
							v, rep, err := p.Resolve(ctx, durable, delta, memos[n], n, Options{})
							if err != nil {
								t.Fatalf("step %d shards %d: Resolve: %v", step, n, err)
							}
							if got := verdictFingerprint(t, v); got != want {
								t.Errorf("step %d shards %d (version %d): delta verdict diverged\n got %s\nwant %s\nreport %+v",
									step, n, version, got, want, rep)
							}
						}

						// Count and probability through the count memo must match
						// the from-scratch ground truth exactly (big-integer /
						// rational equality).
						countMemo.Invalidate(delta.TouchedBlocks())
						wantCount := prob.CountSatisfyingRepairs(sc.q, rebuilt)
						if got := prob.CountSatisfyingShardedMemo(sc.q, durable, 0, countMemo); got.Cmp(wantCount) != 0 {
							t.Errorf("step %d: delta count = %s, want %s", step, got, wantCount)
						}
						wantProb := prob.UniformProbability(sc.q, rebuilt)
						if got := prob.UniformProbabilityShardedMemo(sc.q, durable, 0, countMemo); got.Cmp(wantProb) != 0 {
							t.Errorf("step %d: delta probability = %s, want %s", step, got, wantProb)
						}
					}
				})
			}
		}
	}
}

// chainGroupOps is the metamorphic schedule generator: mutations confined
// to never-certain chain groups. Group i always keeps both R choices
// {R(ai | bi), R(ai | xi)} with S facts only under bi, so no repair
// choosing xi can satisfy R(x|y),S(y|z) — every group, hence every shard,
// stays not-certain through the whole schedule. That determinism matters:
// a certain shard would cancel its component's remaining fan-out at a
// racy point, making the recomputed-shard count depend on scheduling
// rather than on content.
type chainGroupOps struct {
	q      cq.Query
	groups int
}

func (c *chainGroupOps) step(model map[string]db.Fact, r *rand.Rand) (ins, del []db.Fact) {
	i := r.Intn(c.groups)
	rFact := func(val string) db.Fact {
		return db.Fact{Rel: "R", KeyLen: 1, Args: []string{fmt.Sprintf("a%d", i), val}}
	}
	sFact := func(val string) db.Fact {
		return db.Fact{Rel: "S", KeyLen: 1, Args: []string{fmt.Sprintf("b%d", i), val}}
	}
	base := []db.Fact{rFact(fmt.Sprintf("b%d", i)), rFact(fmt.Sprintf("x%d", i))}
	switch r.Intn(3) {
	case 0: // (re)create the group's R backbone plus one S fact
		ins = append(ins, base...)
		ins = append(ins, sFact("c0"))
	case 1: // widen the group's S block
		ins = append(ins, base...)
		ins = append(ins, sFact(fmt.Sprintf("c%d", 1+r.Intn(3))))
	default: // shrink the S block (delete whatever S facts the model holds)
		for id, f := range model {
			if f.Rel == "S" && f.Args[0] == fmt.Sprintf("b%d", i) {
				del = append(del, model[id])
			}
		}
		sort.Slice(del, func(a, b int) bool { return del[a].ID() < del[b].ID() })
		if len(del) > 1 {
			del = del[:1]
		}
		if len(del) == 0 {
			ins = append(ins, base...)
		}
	}
	return ins, del
}

// TestDeltaResolveMetamorphic is the shuffle-invariance metamorphic
// property: running the same mutation schedule against (A) the durable
// store's snapshots and (B) databases rebuilt with component-preserving
// fact shuffles between mutations must produce identical delta verdicts
// AND the identical (reused, recomputed, invalidated) work partition at
// every step. Fingerprints are content-addressed over sorted block IDs, so
// the memo must neither miss a reuse nor fabricate one when facts arrive
// in a different order. maxShards exceeds every instance's group count,
// making the shard partition itself content-determined (the LPT packing
// never merges groups).
func TestDeltaResolveMetamorphic(t *testing.T) {
	ctx := context.Background()
	const maxShards = 1 << 10
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	gen := &chainGroupOps{q: q, groups: 5}

	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(313 + seed*7717))
			st, err := wal.Open(wal.Options{
				Dir:      t.TempDir(),
				Fsync:    wal.FsyncNever,
				Registry: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("wal.Open: %v", err)
			}
			defer st.Close()

			p, err := CompilePlan(q)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			memoA := NewShardMemo(0, nil)
			memoB := NewShardMemo(0, nil)

			model := map[string]db.Fact{}
			shuffleRand := rand.New(rand.NewSource(seed * 101))
			totalReused := 0
			for step := 0; step < 12; step++ {
				ins, del := gen.step(model, r)
				if _, _, err := st.Mutate(ins, del, -1); err != nil {
					t.Fatalf("step %d: Mutate: %v", step, err)
				}
				for _, f := range del {
					delete(model, f.ID())
				}
				for _, f := range ins {
					model[f.ID()] = f
				}
				delta := Delta{Ins: ins, Del: del}

				durable, _ := st.DB()
				vA, repA, err := p.Resolve(ctx, durable, delta, memoA, maxShards, Options{})
				if err != nil {
					t.Fatalf("step %d: schedule A: %v", step, err)
				}

				// Schedule B sees the same facts in a shuffled insertion
				// order: a fresh database object each step, so every hit it
				// gets is purely content-addressed.
				perm := shuffled(t, durable, shuffleRand)
				vB, repB, err := p.Resolve(ctx, perm, delta, memoB, maxShards, Options{})
				if err != nil {
					t.Fatalf("step %d: schedule B: %v", step, err)
				}

				if got, want := verdictFingerprint(t, vB), verdictFingerprint(t, vA); got != want {
					t.Errorf("step %d: shuffled delta verdict diverged\n got %s\nwant %s", step, got, want)
				}
				if repA != repB {
					t.Errorf("step %d: work partition not shuffle-invariant: A=%+v B=%+v", step, repA, repB)
				}
				totalReused += repA.ShardsReused
			}
			// Inertness guard: a schedule of localized mutations over several
			// groups must reuse something (single-shard early steps bypass
			// the memo, but later multi-group steps cannot all miss).
			if totalReused == 0 {
				t.Error("no shard sub-verdict was reused across the whole schedule; the memo appears inert")
			}
		})
	}
}

// TestShardMemoInvalidationExcludesUntouched is the block-granularity
// regression lock: a mutation touching one block of relation R must never
// evict a memo entry for a shard whose fingerprint excludes that block —
// in particular, entries over OTHER blocks of R itself survive (the
// relation-granular eviction this design replaced would have dropped
// them).
func TestShardMemoInvalidationExcludesUntouched(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	// Three independent, never-certain chain groups: every shard is solved
	// (no disjunction short-circuit) and memoized.
	d := db.MustParse(`
		R(a1 | b1) R(a1 | z1) S(b1 | c1)
		R(a2 | b2) R(a2 | z2) S(b2 | c2)
		R(a3 | b3) R(a3 | z3) S(b3 | c3)
	`)
	p, err := CompilePlan(q)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	memo := NewShardMemo(0, nil)
	if _, rep, err := p.SolveShardedMemo(ctx, d, 1<<10, Options{}, memo); err != nil {
		t.Fatalf("SolveShardedMemo: %v", err)
	} else if rep.ShardsRecomputed != 3 {
		t.Fatalf("cold solve report = %+v, want 3 recomputed", rep)
	}
	if memo.Len() != 3 {
		t.Fatalf("memo has %d entries after sharded solve, want 3", memo.Len())
	}

	// Split every shard fingerprint by whether it covers the block the
	// mutation below touches (R's block a1).
	dec := shard.Decompose(q, d, 1<<10)
	touched := db.Fact{Rel: "R", KeyLen: 1, Args: []string{"a1", "b9"}}.BlockID()
	var covering, excluded []string
	for j := range dec.Components {
		for i, fp := range dec.ComponentFingerprints(d, j) {
			covers := false
			for _, bid := range dec.Blocks[j][i] {
				if bid == touched {
					covers = true
				}
			}
			if covers {
				covering = append(covering, fp)
			} else {
				excluded = append(excluded, fp)
			}
		}
	}
	if len(covering) != 1 || len(excluded) != 2 {
		t.Fatalf("bad topology: %d covering / %d excluded shards", len(covering), len(excluded))
	}
	for _, fp := range excluded {
		if !memo.Contains(fp) {
			t.Fatalf("pre-invalidate: excluded fingerprint %s not memoized", fp)
		}
	}

	removed := memo.Invalidate(Delta{Ins: []db.Fact{{Rel: "R", KeyLen: 1, Args: []string{"a1", "b9"}}}}.TouchedBlocks())
	if removed != 1 {
		t.Errorf("invalidation removed %d entries, want exactly the covering shard", removed)
	}
	for _, fp := range covering {
		if memo.Contains(fp) {
			t.Errorf("covering fingerprint survived invalidation of its block")
		}
	}
	for _, fp := range excluded {
		if !memo.Contains(fp) {
			t.Errorf("invalidating %s evicted a shard whose fingerprint excludes it", touched)
		}
	}
	if got := memo.Invalidations(); got != uint64(removed) {
		t.Errorf("Invalidations() = %d, want %d", got, removed)
	}
}

// TestResolveReusesAcrossMutations walks Resolve through a
// mutate → re-solve → undo cycle on four independent chain groups and pins
// the exact work partition at every step, including the content-addressing
// dividend: undoing a mutation restores the pre-mutation fingerprint, so
// the original memo entry (never invalidated — its fingerprint excludes
// the touched block) hits again and the undo re-solve recomputes nothing.
func TestResolveReusesAcrossMutations(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	// Four independent, not-certain chain groups (no OR short-circuit hides
	// reuse: every shard is accounted on every solve).
	d := db.MustParse(`
		R(a1 | b1) R(a1 | x1) S(b1 | c1)
		R(a2 | b2) R(a2 | x2) S(b2 | c2)
		R(a3 | b3) R(a3 | x3) S(b3 | c3)
		R(a4 | b4) R(a4 | x4) S(b4 | c4)
	`)
	p, err := CompilePlan(q)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	memo := NewShardMemo(0, nil)
	v0, rep0, err := p.Resolve(ctx, d, Delta{}, memo, 1<<10, Options{})
	if err != nil {
		t.Fatalf("initial Resolve: %v", err)
	}
	if v0.Outcome != OutcomeNotCertain {
		t.Fatalf("outcome = %v, want not-certain", v0.Outcome)
	}
	if rep0 != (DeltaReport{ShardsRecomputed: 4}) {
		t.Fatalf("cold report = %+v, want 0 reused / 4 recomputed", rep0)
	}

	// Mutate group 1 only: add the S fact that completes its chain (S gains
	// a new block x1, so no existing memo entry covers the touched block —
	// the group's fingerprint changes instead, which is what forces the
	// recompute).
	f := db.Fact{Rel: "S", KeyLen: 1, Args: []string{"x1", "c1"}}
	if err := d.Add(f); err != nil {
		t.Fatalf("Add: %v", err)
	}
	v1, rep1, err := p.Resolve(ctx, d, Delta{Ins: []db.Fact{f}}, memo, 1<<10, Options{})
	if err != nil {
		t.Fatalf("Resolve after mutation: %v", err)
	}
	// Group 1 is now certain, which settles the component's disjunction.
	if v1.Outcome != OutcomeCertain {
		t.Errorf("outcome after mutation = %v, want certain", v1.Outcome)
	}
	if rep1 != (DeltaReport{ShardsReused: 3, ShardsRecomputed: 1}) {
		t.Errorf("report = %+v, want 3 reused / 1 recomputed / 0 invalidated", rep1)
	}

	// Undo: the delete's block (S's x1) is covered by the certain entry
	// memoized above, which invalidation drops. Group 1's content — and so
	// its fingerprint — is back to the original, so the original
	// not-certain entry hits and nothing at all is recomputed.
	if !d.Remove(f) {
		t.Fatal("Remove: fact missing")
	}
	v2, rep2, err := p.Resolve(ctx, d, Delta{Del: []db.Fact{f}}, memo, 1<<10, Options{})
	if err != nil {
		t.Fatalf("Resolve after removal: %v", err)
	}
	if got, want := verdictFingerprint(t, v2), verdictFingerprint(t, v0); got != want {
		t.Errorf("verdict after undo diverged\n got %s\nwant %s", got, want)
	}
	if rep2 != (DeltaReport{ShardsReused: 4, Invalidated: 1}) {
		t.Errorf("report after undo = %+v, want 4 reused / 0 recomputed / 1 invalidated", rep2)
	}
}
