package solver

import (
	"context"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
)

// internedFOQueries stresses the compiled argument kinds of the interned
// schedule: chains (bound keys at deeper levels), constants in key and
// non-key positions, repeated variables within one atom (which must force
// the all-blocks scan), and constants absent from the data.
func internedFOQueries(t *testing.T) []cq.Query {
	t.Helper()
	var out []cq.Query
	for _, s := range []string{
		"R(x | y)",
		"R(x | y), S(y | z)",
		"R(x | y), S(y | z), T(z | w)",
		"R(x, x | y)",
		"R(x | y, y)",
		"R('c1' | y), S(y | z)",
		"R(x | 'c1'), S(x | y)",
		"R(x | y), S(y | 'nosuch')",
	} {
		q, err := cq.ParseQuery(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if _, err := CompileFO(q); err != nil {
			t.Fatalf("%q: not in the FO class: %v", s, err)
		}
		out = append(out, q)
	}
	return out
}

func internedFODBs(t *testing.T) []*db.DB {
	t.Helper()
	dbs := []*db.DB{db.New()}
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	for seed := int64(0); seed < 6; seed++ {
		dbs = append(dbs, gen.RandomDB(q, gen.Config{Embeddings: 5, Noise: 8, Domain: 4}, seed))
	}
	// Signature mismatches (R at arity 3, T with a 2-ary key) and tight
	// multi-fact blocks, plus the constants c1 used by the query set.
	dbs = append(dbs, db.MustParse("R(a, b | c), S(c1 | a), S(c1 | b), T(a, b | c1)"))
	dbs = append(dbs, db.MustParse("R(c1 | c1), R(a | c1), S(c1 | a), T(a | b)"))
	return dbs
}

// TestInternedFOVerdictParity: the interned recursion decides exactly what
// the string-indexed recursion decides, for every query shape and database.
func TestInternedFOVerdictParity(t *testing.T) {
	queries := internedFOQueries(t)
	for di, d := range internedFODBs(t) {
		for qi, q := range queries {
			p, err := CompileFO(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.CertainIndexedCtx(context.Background(), q, d)
			if err != nil {
				t.Fatalf("db %d query %d: indexed: %v", di, qi, err)
			}
			got, err := p.certainInterned(govern.From(context.Background()), q, d)
			if err != nil {
				t.Fatalf("db %d query %d: interned: %v", di, qi, err)
			}
			if want != got {
				t.Fatalf("db %d query %d (%v): interned=%v indexed=%v\ndb:\n%s", di, qi, q, got, want, d)
			}
			perCall, err := CertainFO(q, d)
			if err != nil {
				t.Fatalf("db %d query %d: CertainFO: %v", di, qi, err)
			}
			if perCall != want {
				t.Fatalf("db %d query %d: CertainFO=%v indexed=%v", di, qi, perCall, want)
			}
		}
	}
}

// TestInternedFOGovernorStepParity pins the budget-observable behavior: both
// planes enter the same search nodes in the same order, so they charge
// identical governor step counts — a run under any budget fails (or not) at
// the same point regardless of the knob.
func TestInternedFOGovernorStepParity(t *testing.T) {
	queries := internedFOQueries(t)
	for di, d := range internedFODBs(t) {
		for qi, q := range queries {
			p, err := CompileFO(q)
			if err != nil {
				t.Fatal(err)
			}
			steps := func(interned bool) int64 {
				SetInterned(interned)
				defer SetInterned(true)
				g := govern.New(context.Background(), govern.Options{})
				defer g.Close()
				if _, err := p.CertainCtx(g.Attach(), q, d); err != nil {
					t.Fatalf("db %d query %d: %v", di, qi, err)
				}
				return g.Steps()
			}
			if si, ss := steps(true), steps(false); si != ss {
				t.Fatalf("db %d query %d (%v): interned charged %d steps, string path %d", di, qi, q, si, ss)
			}
		}
	}
}

// TestInternedFOBudgetCutoffParity: under a tight budget both planes return
// the same governor error.
func TestInternedFOBudgetCutoffParity(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := gen.RandomDB(q, gen.Config{Embeddings: 6, Noise: 10, Domain: 4}, 42)
	p, err := CompileFO(q)
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget <= 8; budget++ {
		run := func(interned bool) (bool, error) {
			SetInterned(interned)
			defer SetInterned(true)
			g := govern.New(context.Background(), govern.Options{Budget: budget})
			defer g.Close()
			return p.CertainCtx(g.Attach(), q, d)
		}
		iv, ierr := run(true)
		sv, serr := run(false)
		if iv != sv || (ierr == nil) != (serr == nil) {
			t.Fatalf("budget %d: interned (%v, %v) vs string (%v, %v)", budget, iv, ierr, sv, serr)
		}
	}
}

// TestInternedKnobDefault: the data plane defaults to interned everywhere.
func TestInternedKnobDefault(t *testing.T) {
	if !InternedEnabled() || !InternedDataPlaneEnabled() {
		t.Fatal("interned data plane must default to enabled")
	}
}

// TestInternedDataPlaneAllMethods is the whole-solver differential: every
// dispatched method — FO, safe rewriting, terminal, AC(k), C(k), falsifying,
// and the projection-simplified open case — produces byte-identical verdicts
// with the interned data plane on and off, through both the per-call SolveCtx
// and the compiled Plan.SolveCtx paths.
func TestInternedDataPlaneAllMethods(t *testing.T) {
	defer SetInternedDataPlane(true)
	for _, tc := range differentialCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			p, err := CompilePlan(tc.q)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			for i, d := range tc.dbs {
				fingerprints := func(on bool) (string, string) {
					SetInternedDataPlane(on)
					v, err := SolveCtx(context.Background(), tc.q, d, Options{})
					if err != nil {
						t.Fatalf("db %d (interned=%v): SolveCtx: %v", i, on, err)
					}
					pv, err := p.SolveCtx(context.Background(), d, Options{})
					if err != nil {
						t.Fatalf("db %d (interned=%v): Plan.SolveCtx: %v", i, on, err)
					}
					return verdictFingerprint(t, v), verdictFingerprint(t, pv)
				}
				onSolve, onPlan := fingerprints(true)
				offSolve, offPlan := fingerprints(false)
				if onSolve != offSolve {
					t.Fatalf("db %d: SolveCtx diverges across the knob\n on:  %s\n off: %s", i, onSolve, offSolve)
				}
				if onPlan != offPlan {
					t.Fatalf("db %d: Plan.SolveCtx diverges across the knob\n on:  %s\n off: %s", i, onPlan, offPlan)
				}
				if onSolve != onPlan {
					t.Fatalf("db %d: plan and per-call verdicts diverge\n solve: %s\n plan:  %s", i, onSolve, onPlan)
				}
			}
		})
	}
}
