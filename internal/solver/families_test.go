package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

// TestTerminalPairsAgainstBruteForce drives the Theorem 3 algorithm across
// the generalized Fig. 4 family.
func TestTerminalPairsAgainstBruteForce(t *testing.T) {
	for _, withRoot := range []bool{false, true} {
		for n := 1; n <= 3; n++ {
			q := gen.TerminalPairsQuery(n, withRoot)
			for seed := int64(0); seed < 20; seed++ {
				d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, seed)
				want := BruteForce(q, d)
				got, err := CertainTerminal(q, d)
				if err != nil {
					t.Fatalf("n=%d root=%v seed=%d: %v", n, withRoot, seed, err)
				}
				if got != want {
					t.Errorf("n=%d root=%v seed=%d: thm3=%v brute=%v on\n%s",
						n, withRoot, seed, got, want, d)
				}
			}
		}
	}
}

// TestOpenCaseSolvedViaSimplification: the §6.2 open-class query is
// paper-classified as open, but the projection simplification rewrites it
// to AC(2), which Theorem 4 decides in polynomial time — results agree
// with brute force throughout (evidence for Conjecture 1).
func TestOpenCaseSolvedViaSimplification(t *testing.T) {
	q := gen.OpenCaseQuery()
	for seed := int64(0); seed < 40; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
		res, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Classification.Class != core.ClassOpenConjecturedPTime {
			t.Fatalf("paper classification must stay open, got %v", res.Classification.Class)
		}
		if res.Simplified == nil || res.Method != MethodACk || res.SimplifiedClass != core.ClassPTimeACk {
			t.Fatalf("expected AC(2) via projection, got method %v simplified %+v class %v",
				res.Method, res.Simplified, res.SimplifiedClass)
		}
		if len(res.Simplified.Projected) != 1 || res.Simplified.Projected[0] != "S" {
			t.Errorf("projection report = %+v", res.Simplified)
		}
		if want := BruteForce(q, d); res.Certain != want {
			t.Errorf("seed %d: solve=%v brute=%v", seed, res.Certain, want)
		}
	}
}

// TestSimplificationAcrossClasses: the projection rule is sound on queries
// of every origin class (validated against brute force), and queries with
// no eligible atom are untouched.
func TestSimplificationAcrossClasses(t *testing.T) {
	// q1 with an extra private column on P: still coNP after
	// simplification (the strong cycle is elsewhere), exercised via Solve.
	q := cq.MustParseQuery("R(u | 'a', x), S(y | x, z), T(x | y), P(x | z, w)")
	for seed := int64(0); seed < 15; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, seed)
		res, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := BruteForce(q, d); res.Certain != want {
			t.Errorf("seed %d: solve=%v brute=%v", seed, res.Certain, want)
		}
	}
	// Ineligible cases leave the query untouched.
	for _, s := range []string{
		"R(x | y), S(y | x)",      // non-key vars shared
		"R(x | 'c'), S(x | y, y)", // constants / repeated private vars
	} {
		qq := cq.MustParseQuery(s)
		if q2, _, rep := simplifyProjection(qq); rep != nil || !q2.Equal(qq) {
			t.Errorf("%s: unexpected simplification %+v -> %s", s, rep, q2)
		}
	}
	// Signature-mismatched facts are dropped, not projected into
	// fabricated all-key facts.
	open := gen.OpenCaseQuery()
	_, rewrite, rep := simplifyProjection(open)
	if rep == nil {
		t.Fatal("open case must simplify")
	}
	d := db.MustParse("S(a, b | c, d)") // arity 4 ≠ atom arity 3
	out, err := rewrite(d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("mismatched facts must be dropped, got:\n%s", out)
	}
}

// TestStaticOrderingAblationAgrees: both search orders are exact.
func TestStaticOrderingAblationAgrees(t *testing.T) {
	queries := []cq.Query{cq.Q0(), cq.Q1(), gen.OpenCaseQuery()}
	for _, q := range queries {
		for seed := int64(0); seed < 20; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			_, dyn := FalsifyingRepair(q, d)
			repS, stat := FalsifyingRepairStatic(q, d)
			if dyn != stat {
				t.Errorf("%s seed %d: dynamic=%v static=%v", q, seed, dyn, stat)
			}
			if stat {
				// The static witness must be a genuine falsifying repair.
				rd := db.RepairDB(repS)
				if rd.NumBlocks() != d.NumBlocks() {
					t.Errorf("%s seed %d: static witness not maximal", q, seed)
				}
			}
		}
	}
	// SAT-encoded instances as well.
	for seed := int64(0); seed < 10; seed++ {
		f := gen.RandomMonotoneSAT(4, 8, 2, seed)
		d := gen.MonotoneSATQ0DB(f)
		_, dyn := FalsifyingRepair(cq.Q0(), d)
		_, stat := FalsifyingRepairStatic(cq.Q0(), d)
		if dyn != stat || dyn != f.Satisfiable() {
			t.Errorf("seed %d: dyn=%v stat=%v sat=%v", seed, dyn, stat, f.Satisfiable())
		}
	}
}

// TestCyclicSafeDispatch: a safe query with a cyclic hypergraph has no
// attack graph, yet Theorem 6 makes it FO; Solve must dispatch to the safe
// rewriting and agree with brute force.
func TestCyclicSafeDispatch(t *testing.T) {
	q := cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	for seed := int64(0); seed < 25; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
		res, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Method != MethodSafeRewriting {
			t.Fatalf("expected safe-rewriting dispatch, got %v", res.Method)
		}
		if want := BruteForce(q, d); res.Certain != want {
			t.Errorf("seed %d: solve=%v brute=%v", seed, res.Certain, want)
		}
	}
}

// TestParallelACkAgrees: the parallel component fan-out matches the
// sequential Theorem 4 algorithm.
func TestParallelACkAgrees(t *testing.T) {
	q := cq.ACk(3)
	shape, _ := core.MatchCycleShape(q, true)
	for seed := int64(0); seed < 20; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 2, Domain: 3}, seed)
		seq, err := CertainACk(q, shape, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, err := CertainACkParallel(q, shape, d, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par != seq {
				t.Errorf("seed %d workers %d: parallel=%v sequential=%v", seed, workers, par, seq)
			}
		}
	}
	// Structured multi-component instances.
	for _, width := range []int{1, 2} {
		d := gen.CycleDB(gen.CycleConfig{K: 3, Components: 13, Width: width, EncodeAll: true})
		seq, _ := CertainACk(q, shape, d)
		par, err := CertainACkParallel(q, shape, d, 3)
		if err != nil || par != seq {
			t.Errorf("width %d: parallel=%v sequential=%v err=%v", width, par, seq, err)
		}
	}
	if _, err := CertainACkParallel(q, nil, gen.Figure6DB(), 2); err == nil {
		t.Error("nil shape must be rejected")
	}
}

// TestFalsifyingRepairContext: cancellation aborts the search with the
// context error; an ample deadline reproduces the plain result.
func TestFalsifyingRepairContext(t *testing.T) {
	q := cq.Q0()
	f := gen.RandomMonotoneSAT(24, 192, 3, 2408) // unsatisfiable: the E3 instance that takes ~200ms
	d := gen.MonotoneSATQ0DB(f)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := FalsifyingRepairContext(ctx, q, d)
	if err == nil {
		t.Skip("instance solved before the 1ms deadline; cancellation path not exercised")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want DeadlineExceeded, got %v", err)
	}

	small := gen.MonotoneSATQ0DB(gen.RandomMonotoneSAT(4, 8, 2, 5))
	rep, found, err := FalsifyingRepairContext(context.Background(), q, small)
	if err != nil {
		t.Fatal(err)
	}
	_, plainFound := FalsifyingRepair(q, small)
	if found != plainFound {
		t.Errorf("context variant disagrees: %v vs %v", found, plainFound)
	}
	if found && db.RepairDB(rep).NumBlocks() != small.NumBlocks() {
		t.Error("witness must be a full repair")
	}
}
