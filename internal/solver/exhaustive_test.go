package solver

import (
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

// enumerateDatabases calls visit with every database over the given
// candidate facts (2^n subsets). The visit callback must not retain d.
func enumerateDatabases(t *testing.T, candidates []db.Fact, visit func(d *db.DB)) {
	t.Helper()
	n := len(candidates)
	if n > 16 {
		t.Fatalf("too many candidate facts for exhaustive enumeration: %d", n)
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		d := db.New()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				if err := d.Add(candidates[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		visit(d)
	}
}

// binaryFacts returns all facts rel(a|b) with a, b over the domain.
func binaryFacts(rel string, dom []string) []db.Fact {
	var out []db.Fact
	for _, a := range dom {
		for _, b := range dom {
			out = append(out, db.NewFact(rel, 1, a, b))
		}
	}
	return out
}

// TestExhaustiveC2 verifies CertainTerminal against brute force on every
// database for C(2) over a 2-element domain: 2^8 = 256 instances, total
// coverage of the two-atom weak-cycle solver's small-case behavior.
func TestExhaustiveC2(t *testing.T) {
	q := cq.Ck(2)
	dom := []string{"a", "b"}
	candidates := append(binaryFacts("R1", dom), binaryFacts("R2", dom)...)
	count := 0
	enumerateDatabases(t, candidates, func(d *db.DB) {
		count++
		want := BruteForce(q, d)
		got, err := CertainTerminal(q, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if got != want {
			t.Errorf("thm3=%v brute=%v on:\n%s", got, want, d)
		}
	})
	if count != 256 {
		t.Fatalf("expected 256 databases, saw %d", count)
	}
}

// TestExhaustiveAC2 verifies CertainACk on every AC(2) database over a
// 2-element domain (R1, R2 edges plus S2 tuples): 2^12 = 4096 instances.
func TestExhaustiveAC2(t *testing.T) {
	q := cq.ACk(2)
	dom := []string{"a", "b"}
	candidates := append(binaryFacts("R1", dom), binaryFacts("R2", dom)...)
	for _, a := range dom {
		for _, b := range dom {
			candidates = append(candidates, db.NewFact("S2", 2, a, b))
		}
	}
	res, err := SolveResult(q, db.New())
	if err != nil || res.Certain {
		t.Fatalf("empty database sanity: %v %v", res, err)
	}
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		r, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if r.Certain != want {
			t.Errorf("solve=%v brute=%v on:\n%s", r.Certain, want, d)
		}
	})
}

// TestExhaustiveQ0Small verifies the falsifying search on every q0
// database over a minimal shape: R0 over {a}×{a,b} and S0 over
// {a,b}×{z}×{a}: 2^6 = 64 instances... extended with a second x value for
// 2^10 coverage.
func TestExhaustiveQ0(t *testing.T) {
	q := cq.Q0()
	var candidates []db.Fact
	for _, x := range []string{"p", "q"} {
		for _, y := range []string{"a", "b"} {
			candidates = append(candidates, db.NewFact("R0", 1, x, y))
		}
	}
	for _, y := range []string{"a", "b"} {
		for _, x := range []string{"p", "q"} {
			candidates = append(candidates, db.NewFact("S0", 2, y, "z", x))
		}
	}
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		if got := CertainByFalsifying(q, d); got != want {
			t.Errorf("falsify=%v brute=%v on:\n%s", got, want, d)
		}
	})
}

// TestExhaustiveFOPath verifies CertainFO on every database for the path
// query over a 2-element domain: 2^8 instances.
func TestExhaustiveFOPath(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	dom := []string{"a", "b"}
	candidates := append(binaryFacts("R", dom), binaryFacts("S", dom)...)
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		got, err := CertainFO(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("fo=%v brute=%v on:\n%s", got, want, d)
		}
	})
}

// TestExhaustiveTwoAtomSwapped verifies the two-atom weak-cycle solver on
// every database of the swapped-column pair over minimal domains:
// F(x,u|v), G(x,v|u) with x fixed and u,v over {a,b}: 2^8 = 256 instances
// (two blocks of two facts per relation).
func TestExhaustiveTwoAtomSwapped(t *testing.T) {
	q := cq.MustParseQuery("F(x, u | v), G(x, v | u)")
	F, G := q.Atoms[0], q.Atoms[1]
	var candidates []db.Fact
	for _, u := range []string{"a", "b"} {
		for _, v := range []string{"a", "b"} {
			candidates = append(candidates, db.NewFact("F", 2, "k", u, v))
			candidates = append(candidates, db.NewFact("G", 2, "k", v, u))
		}
	}
	if len(candidates) != 8 {
		t.Fatalf("candidates = %d, want 4 F-facts + 4 G-facts", len(candidates))
	}
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		got, err := certainTwoAtomWeak(F, G, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if got != want {
			t.Errorf("two-atom=%v brute=%v on:\n%s", got, want, d)
		}
	})
}

// TestExhaustiveOpenCase verifies Solve (which routes the §6.2 open-case
// query through the projection simplification into AC(2)) on every
// database over a minimal domain: R1, R2 edges over {a,b} plus S tuples
// with a single z value — 2^12 = 4096 instances against brute force.
func TestExhaustiveOpenCase(t *testing.T) {
	q := gen.OpenCaseQuery()
	dom := []string{"a", "b"}
	candidates := append(binaryFacts("R1", dom), binaryFacts("R2", dom)...)
	for _, x := range dom {
		for _, y := range dom {
			candidates = append(candidates, db.NewFact("S", 2, x, y, "z0"))
		}
	}
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		res, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if res.Certain != want {
			t.Errorf("solve=%v brute=%v on:\n%s", res.Certain, want, d)
		}
	})
}

// TestExhaustiveOpenCaseWithBlockChoices adds a second z value so S-blocks
// genuinely have choices (the projection must be invariant to them):
// R1 edges fixed to the full bipartite set, S facts enumerated with two z
// options per key — 2^8 combinations over the S relation.
func TestExhaustiveOpenCaseWithBlockChoices(t *testing.T) {
	q := gen.OpenCaseQuery()
	dom := []string{"a", "b"}
	base := append(binaryFacts("R1", dom), binaryFacts("R2", dom)...)
	var sCandidates []db.Fact
	for _, x := range dom {
		for _, y := range dom {
			sCandidates = append(sCandidates, db.NewFact("S", 2, x, y, "z0"))
			sCandidates = append(sCandidates, db.NewFact("S", 2, x, y, "z1"))
		}
	}
	enumerateDatabases(t, sCandidates, func(sPart *db.DB) {
		d := db.New()
		for _, f := range base {
			if err := d.Add(f); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range sPart.Facts() {
			if err := d.Add(f); err != nil {
				t.Fatal(err)
			}
		}
		want := BruteForce(q, d)
		res, err := SolveResult(q, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if res.Certain != want {
			t.Errorf("solve=%v brute=%v on:\n%s", res.Certain, want, d)
		}
	})
}

// TestExhaustiveC3 verifies the direct Corollary 1 solver on every C(3)
// database over one value per position pair: R1, R2, R3 edges over a
// 2-element domain per position boundary — 2^12 = 4096 instances.
func TestExhaustiveC3(t *testing.T) {
	q := cq.Ck(3)
	shape, ok := core.MatchCycleShape(q, false)
	if !ok {
		t.Fatal("C(3) shape")
	}
	var candidates []db.Fact
	for _, rel := range []string{"R1", "R2", "R3"} {
		for _, a := range []string{"p", "q"} {
			for _, b := range []string{"p", "q"} {
				candidates = append(candidates, db.NewFact(rel, 1, a, b))
			}
		}
	}
	enumerateDatabases(t, candidates, func(d *db.DB) {
		want := BruteForce(q, d)
		got, err := CertainCk(q, shape, d)
		if err != nil {
			t.Fatalf("db:\n%s: %v", d, err)
		}
		if got != want {
			t.Errorf("ck=%v brute=%v on:\n%s", got, want, d)
		}
	})
}
