package solver

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/wal"
)

// TestDurableInterleavedSolveProperty is the durability/equivalence
// property: a database grown through an arbitrary interleaving of durable
// inserts and deletes (internal/wal, incremental per-relation indexes)
// yields byte-identical verdicts to a database rebuilt from scratch out
// of the surviving facts — across fact shuffles and every shard count
// under test. A divergence would mean the write path's incremental index
// maintenance (or the WAL's effective-fact normalization) changed an
// answer, which no amount of crash-safety could excuse.
func TestDurableInterleavedSolveProperty(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	queryRels := []string{"R", "S", "U"} // U is pure noise for the solver, but must still round-trip

	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(4242 + seed*7717))
			dir := t.TempDir()
			st, err := wal.Open(wal.Options{
				Dir:      dir,
				Fsync:    wal.FsyncNever, // equivalence is under test here, not crash-safety
				Registry: obs.NewRegistry(),
			})
			if err != nil {
				t.Fatalf("wal.Open: %v", err)
			}
			defer st.Close()

			// model mirrors what the store should contain, applied with
			// plain insert/delete set semantics.
			model := map[string]db.Fact{}
			randomFact := func() db.Fact {
				rel := queryRels[r.Intn(len(queryRels))]
				dom := func() string { return string(rune('a' + r.Intn(3))) }
				return db.Fact{Rel: rel, KeyLen: 1, Args: []string{dom(), dom()}}
			}

			for step := 0; step < 12; step++ {
				var ins, del []db.Fact
				if r.Intn(3) > 0 || len(model) == 0 { // bias toward growth
					for n := 1 + r.Intn(3); n > 0; n-- {
						ins = append(ins, randomFact())
					}
				} else {
					// Iterate in sorted-ID order so the random draws (and
					// so the whole script) are reproducible per seed.
					ids := make([]string, 0, len(model))
					for id := range model {
						ids = append(ids, id)
					}
					sort.Strings(ids)
					for _, id := range ids {
						if r.Intn(3) == 0 {
							del = append(del, model[id])
						}
					}
					if len(del) == 0 {
						ins = append(ins, randomFact())
					}
				}
				if _, _, err := st.Mutate(ins, del, -1); err != nil {
					t.Fatalf("step %d: Mutate(ins=%v, del=%v): %v", step, ins, del, err)
				}
				for _, f := range del {
					delete(model, f.ID())
				}
				for _, f := range ins {
					model[f.ID()] = f
				}

				// Rebuild from scratch and require identical verdicts from
				// the durable snapshot at every shard count and shuffle.
				rebuilt := db.New()
				for _, f := range model {
					if err := rebuilt.Add(f); err != nil {
						t.Fatalf("rebuild add %v: %v", f, err)
					}
				}
				mono, err := SolveCtx(ctx, q, rebuilt, Options{})
				if err != nil {
					t.Fatalf("step %d: rebuilt solve: %v", step, err)
				}
				want := verdictFingerprint(t, mono)

				durable, version := st.DB()
				if durable.Len() != len(model) {
					t.Fatalf("step %d (version %d): durable has %d facts, model %d", step, version, durable.Len(), len(model))
				}
				for _, n := range shardCountsUnderTest() {
					v, err := Solve(ctx, q, durable, WithShards(n))
					if err != nil {
						t.Fatalf("step %d shards %d: %v", step, n, err)
					}
					if got := verdictFingerprint(t, v); got != want {
						t.Errorf("step %d shards %d (version %d):\n got %s\nwant %s", step, n, version, got, want)
					}
				}
				perm := shuffled(t, durable, r)
				if v, err := Solve(ctx, q, perm, WithShards(2)); err != nil {
					t.Fatalf("step %d shuffled: %v", step, err)
				} else if got := verdictFingerprint(t, v); got != want {
					t.Errorf("step %d shuffled:\n got %s\nwant %s", step, got, want)
				}
			}

			// Reopen: recovery must reconstruct the exact same database.
			preVersion := st.Version()
			if err := st.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			st2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever, Registry: obs.NewRegistry()})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st2.Close()
			recovered, version := st2.DB()
			if version != preVersion {
				t.Fatalf("recovered version = %d, want %d", version, preVersion)
			}
			if recovered.Len() != len(model) {
				t.Fatalf("recovered %d facts, model %d", recovered.Len(), len(model))
			}
			v, err := Solve(ctx, q, recovered, WithShards(2))
			if err != nil {
				t.Fatalf("recovered solve: %v", err)
			}
			mono, err := func() (Verdict, error) {
				rebuilt := db.New()
				for _, f := range model {
					if err := rebuilt.Add(f); err != nil {
						return Verdict{}, err
					}
				}
				return SolveCtx(ctx, q, rebuilt, Options{})
			}()
			if err != nil {
				t.Fatalf("rebuilt solve: %v", err)
			}
			if got, want := verdictFingerprint(t, v), verdictFingerprint(t, mono); got != want {
				t.Errorf("recovered verdict:\n got %s\nwant %s", got, want)
			}
		})
	}
}
