package solver

import (
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
)

func TestShardMemoDropsUnknown(t *testing.T) {
	m := NewShardMemo(4, nil)
	m.Put("fp", OutcomeUnknown, []string{"R/b"})
	if m.Len() != 0 {
		t.Fatalf("Unknown was memoized; Len = %d", m.Len())
	}
	if o, ok := m.Get("fp"); ok {
		t.Fatalf("Get returned %v for a dropped outcome", o)
	}
	m.Put("fp", OutcomeCertain, []string{"R/b"})
	if o, ok := m.Get("fp"); !ok || o != OutcomeCertain {
		t.Fatalf("Get = (%v, %v), want (certain, true)", o, ok)
	}
}

func TestShardMemoEvictionUnindexes(t *testing.T) {
	m := NewShardMemo(2, nil)
	m.Put("fp1", OutcomeCertain, []string{"R/a"})
	m.Put("fp2", OutcomeNotCertain, []string{"R/b"})
	m.Put("fp3", OutcomeCertain, []string{"R/c"}) // evicts fp1 (LRU)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if m.Contains("fp1") {
		t.Fatal("fp1 survived past capacity")
	}
	// The evicted entry must be gone from the block index too: invalidating
	// its block removes nothing (a leak here would also pin garbage).
	if removed := m.Invalidate([]string{"R/a"}); removed != 0 {
		t.Fatalf("Invalidate of evicted entry's block removed %d entries", removed)
	}
	if removed := m.Invalidate([]string{"R/b"}); removed != 1 {
		t.Fatalf("Invalidate(R/b) removed %d, want 1", removed)
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Fatalf("Stats.Evictions = %d, want 1 (capacity only; invalidations are separate)", st.Evictions)
	}
	if got := m.Invalidations(); got != 1 {
		t.Fatalf("Invalidations = %d, want 1", got)
	}
}

func TestShardMemoSharedBlock(t *testing.T) {
	// Two entries covering one common block: invalidating it drops both;
	// a block shared with nothing else is cleaned from the index.
	m := NewShardMemo(8, nil)
	m.Put("fp1", OutcomeCertain, []string{"R/a", "S/x"})
	m.Put("fp2", OutcomeNotCertain, []string{"R/b", "S/x"})
	m.Put("fp3", OutcomeCertain, []string{"U/k"})
	if removed := m.Invalidate([]string{"S/x"}); removed != 2 {
		t.Fatalf("Invalidate(S/x) removed %d, want 2", removed)
	}
	if m.Contains("fp1") || m.Contains("fp2") {
		t.Fatal("entries covering the invalidated block survived")
	}
	if !m.Contains("fp3") {
		t.Fatal("unrelated entry was dropped")
	}
	// Their other blocks were unindexed along the way.
	if removed := m.Invalidate([]string{"R/a", "R/b"}); removed != 0 {
		t.Fatalf("stale index entries: Invalidate removed %d", removed)
	}
}

func TestShardMemoMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cm := obs.NewCacheMetrics(reg, "shard_memo")
	m := NewShardMemo(2, cm)
	m.Put("fp1", OutcomeCertain, []string{"R/a"})
	if _, ok := m.Get("fp1"); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("expected miss")
	}
	m.Put("fp2", OutcomeCertain, []string{"R/b"})
	m.Put("fp3", OutcomeCertain, []string{"R/c"})
	if h, ms, ev := cm.Hits(), cm.Misses(), cm.Evictions(); h != 1 || ms != 1 || ev != 1 {
		t.Fatalf("metrics (hits, misses, evictions) = (%d, %d, %d), want (1, 1, 1)", h, ms, ev)
	}
	if l, c := cm.Len(), cm.Cap(); l != 2 || c != 2 {
		t.Fatalf("metrics (len, cap) = (%d, %d), want (2, 2)", l, c)
	}
	// Contains must not disturb the counters (it is the introspection
	// surface the metamorphic tests lean on).
	m.Contains("fp2")
	m.Contains("nope")
	if h, ms := cm.Hits(), cm.Misses(); h != 1 || ms != 1 {
		t.Fatalf("Contains moved counters: (hits, misses) = (%d, %d)", h, ms)
	}
}

func TestShardMemoDefaultSize(t *testing.T) {
	m := NewShardMemo(0, nil)
	if got := m.Stats().Cap; got != DefaultShardMemoSize {
		t.Fatalf("default cap = %d, want %d", got, DefaultShardMemoSize)
	}
}

func TestDeltaTouchedBlocks(t *testing.T) {
	f := func(rel, key, val string) db.Fact {
		return db.Fact{Rel: rel, KeyLen: 1, Args: []string{key, val}}
	}
	dl := Delta{
		Ins: []db.Fact{f("S", "b", "c"), f("R", "a", "b"), f("R", "a", "b2")},
		Del: []db.Fact{f("R", "a", "b3"), f("U", "k", "w")},
	}
	got := dl.TouchedBlocks()
	want := []string{f("R", "a", "b").BlockID(), f("S", "b", "c").BlockID(), f("U", "k", "w").BlockID()}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("TouchedBlocks = %v, want sorted deduped %v", got, want)
	}
	if len(Delta{}.TouchedBlocks()) != 0 {
		t.Fatal("empty delta touched blocks")
	}
}
