package solver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/prob"
)

// Outcome is a three-valued CERTAINTY(q) decision: governed solving may be
// cut off by a deadline or budget before the exact answer is known.
type Outcome int

const (
	// OutcomeCertain: q holds in every repair.
	OutcomeCertain Outcome = iota
	// OutcomeNotCertain: some repair falsifies q.
	OutcomeNotCertain
	// OutcomeUnknown: the search was cut off; see Verdict.Err and
	// Verdict.Evidence for the cause and the partial evidence.
	OutcomeUnknown
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCertain:
		return "certain"
	case OutcomeNotCertain:
		return "not certain"
	case OutcomeUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Evidence carries the partial progress of a governed solve that was cut
// off, plus the results of the graceful-degradation sampling pass.
type Evidence struct {
	// Steps is the number of governor steps (search nodes) executed.
	Steps int64 `json:"steps"`
	// TotalBlocks is the number of relevant blocks in the falsifying
	// search space (0 when the cutoff happened outside that search).
	TotalBlocks int `json:"total_blocks,omitempty"`
	// BestDepth is the largest number of blocks the falsifying search ever
	// had simultaneously fixed without satisfying q.
	BestDepth int `json:"best_depth,omitempty"`
	// BestCandidate is the partial selection at BestDepth — the best
	// falsifying candidate found before the cutoff.
	BestCandidate []db.Fact `json:"best_candidate,omitempty"`
	// Samples is the number of uniform repairs drawn by the degradation
	// sampler; 0 when sampling was disabled or did not run.
	Samples int `json:"samples,omitempty"`
	// Estimate is the sampled fraction of repairs satisfying q (valid when
	// Samples > 0). An estimate near 1 is evidence for certainty; exactly
	// 1 over many samples makes a falsifying repair unlikely but does not
	// exclude it.
	Estimate float64 `json:"estimate,omitempty"`
	// FalsifyingSample, when non-nil, is a sampled repair falsifying q — a
	// definitive witness that the instance is not certain even though the
	// exact search was cut off.
	FalsifyingSample *db.DB `json:"falsifying_sample,omitempty"`
}

// Verdict is the result of a governed solve. When Outcome is
// OutcomeUnknown, Err holds the cutoff cause (context.DeadlineExceeded,
// context.Canceled, govern.ErrBudget, or an injected fault) and Evidence
// the partial progress; Result.Certain is meaningless then, but
// Result.Classification and Result.Method still report what was attempted.
type Verdict struct {
	Outcome  Outcome
	Result   Result
	Err      error
	Evidence *Evidence
}

// Options bounds a governed solve. The zero value imposes no limits, so
// SolveCtx(ctx, q, d, Options{}) is Solve plus cancellation via ctx and
// panic containment.
type Options struct {
	// Budget caps the total number of search steps; 0 means unlimited.
	Budget int64
	// Timeout bounds wall-clock time; 0 means no deadline.
	Timeout time.Duration
	// Fault is the governor's fault-injection hook (testing); nil disables.
	Fault func(step int64) error
	// DegradeSamples caps the uniform repair samples drawn after a cutoff
	// on the exponential path; 0 means the default (1024), negative
	// disables the degradation sampling entirely.
	DegradeSamples int
	// SampleSeed seeds the degradation sampler (deterministic per seed).
	SampleSeed int64
	// SampleTimeout bounds the wall-clock time of the degradation
	// sampling pass; 0 means the default (250ms).
	SampleTimeout time.Duration
}

// SolveCtx is the resource-governed Solve: it dispatches exactly like
// Solve, but every decision procedure runs under a Governor enforcing
// ctx's cancellation plus the step budget and deadline of opts, and any
// panic escaping the stack (malformed inputs deep in formula evaluation,
// say) is converted into an error rather than crashing the process.
//
// On budget or deadline exhaustion in the exponential falsifying-repair
// search, SolveCtx degrades gracefully instead of failing: it returns an
// OutcomeUnknown verdict carrying the search's partial evidence and a
// Monte-Carlo estimate of the repair-satisfaction frequency from a bounded
// sampling pass (Section 7's uniform-repair semantics). If that sampling
// pass happens to draw a repair falsifying q, the verdict is a definitive
// OutcomeNotCertain with the sampled repair as witness. Cutoffs on
// polynomial paths — only possible under very tight budgets — yield an
// OutcomeUnknown verdict without a sampling pass.
func SolveCtx(ctx context.Context, q cq.Query, d *db.DB, opts Options) (Verdict, error) {
	ctx, root := obs.StartSpan(ctx, "solve")
	g := govern.New(ctx, govern.Options{Budget: opts.Budget, Timeout: opts.Timeout, Fault: opts.Fault})
	defer g.Close()
	gctx := g.Attach()
	var v Verdict
	err := govern.Safe(func() error {
		var innerErr error
		v, innerErr = solveGoverned(gctx, g, q, d, opts)
		return innerErr
	})
	endSolveSpan(root, g, v, err)
	if err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// endSolveSpan finishes a root solve span with the class, method, outcome,
// and the governor's total step count as attributes. All calls are no-ops
// when tracing is off (root is nil).
func endSolveSpan(root *obs.Span, g *govern.Governor, v Verdict, err error) {
	if root == nil {
		return
	}
	if err == nil {
		root.SetAttr("class", v.Result.Classification.Class.Code())
		root.SetAttr("method", methodCodes[v.Result.Method])
		root.SetAttr("outcome", outcomeCodes[v.Outcome])
	} else {
		root.SetAttr("error", err.Error())
	}
	root.SetInt("steps", g.Steps())
	root.End()
}

// solveGoverned mirrors Solve's dispatch (including the projection
// simplification attempt) over the context-aware procedure variants. Each
// phase — classification, the simplification attempt, the method's
// evaluation — records a span when a tracer rides ctx.
func solveGoverned(ctx context.Context, g *govern.Governor, q cq.Query, d *db.DB, opts Options) (Verdict, error) {
	_, csp := obs.StartSpan(ctx, "classify")
	cls, err := core.Classify(q)
	csp.End()
	if err != nil {
		return Verdict{}, err
	}
	if !cls.Class.InP() {
		_, ssp := obs.StartSpan(ctx, "simplify")
		if q2, rewrite, rep := simplifyProjection(q); rep != nil {
			if cls2, err2 := core.Classify(q2); err2 == nil && cls2.Class.InP() {
				d2, err := rewrite(d)
				ssp.SetAttr("rewritten-class", cls2.Class.Code())
				ssp.End()
				if err != nil {
					return Verdict{}, err
				}
				v, err := dispatchGoverned(ctx, g, q2, d2, cls2, opts, nil)
				if err != nil {
					return Verdict{}, err
				}
				v.Result.Classification = cls
				v.Result.Simplified = rep
				v.Result.SimplifiedClass = cls2.Class
				return v, nil
			}
		}
		ssp.End()
	}
	return dispatchGoverned(ctx, g, q, d, cls, opts, nil)
}

// methodForClass resolves the decision procedure dispatchGoverned will run
// for a classification, mirroring its switch.
func methodForClass(cls core.Classification) Method {
	switch cls.Class {
	case core.ClassFO:
		if cls.Graph == nil {
			return MethodSafeRewriting
		}
		return MethodFO
	case core.ClassPTimeTerminal:
		return MethodTerminal
	case core.ClassPTimeACk:
		return MethodACk
	case core.ClassPTimeCk:
		return MethodCk
	default:
		return MethodFalsifying
	}
}

// dispatchGoverned runs the decision procedure for cls on (q, d). When a
// compiled plan is supplied, its precompiled artifacts (the FO program, the
// safe rewriting) replace the per-call compilation; governor step accounting
// is identical either way, so the two modes produce byte-identical Verdicts.
func dispatchGoverned(ctx context.Context, g *govern.Governor, q cq.Query, d *db.DB, cls core.Classification, opts Options, p *Plan) (Verdict, error) {
	method := methodForClass(cls)
	res := Result{Classification: cls, SimplifiedClass: cls.Class, Method: method}
	ectx, esp := obs.StartSpan(ctx, "eval/"+methodCodes[method])
	var certain bool
	var err error
	switch method {
	case MethodSafeRewriting:
		// Cyclic hypergraph but safe: evaluate the Theorem 6 rewriting.
		var phi fo.Formula
		var prog *fo.Compiled
		if p != nil {
			phi, prog = p.safePhi, p.safeProg
		} else {
			phi, err = fo.RewriteSafe(q)
		}
		if err == nil {
			certain, err = evalSafeRewriting(phi, prog, d)
		}
	case MethodFO:
		if p != nil {
			certain, err = p.foProg.CertainCtx(ectx, q, d)
		} else {
			certain, err = CertainFOCtx(ectx, q, d)
		}
	case MethodTerminal:
		certain, err = CertainTerminalCtx(ectx, q, d)
	case MethodACk:
		certain, err = CertainACkCtx(ectx, q, cls.Shape, d)
	case MethodCk:
		certain, err = CertainCkCtx(ectx, q, cls.Shape, d)
	default:
		var found bool
		var sev searchEvidence
		_, found, sev, err = falsifyingRepairGov(govern.From(ectx), q, d)
		if err != nil && g.Err() != nil {
			// Governed cutoff on the exponential path: degrade to sampling.
			endEvalSpan(esp, g)
			return degradedVerdict(ctx, g, q, d, res, sev, opts), nil
		}
		certain = !found
	}
	endEvalSpan(esp, g)
	if err != nil {
		if g.Err() != nil {
			// Governed cutoff on a polynomial or rewriting path.
			return Verdict{
				Outcome:  OutcomeUnknown,
				Result:   res,
				Err:      g.Err(),
				Evidence: &Evidence{Steps: g.Steps()},
			}, nil
		}
		return Verdict{}, err
	}
	res.Certain = certain
	out := OutcomeNotCertain
	if certain {
		out = OutcomeCertain
	}
	return Verdict{Outcome: out, Result: res}, nil
}

// endEvalSpan finishes an evaluation-phase span, attaching the governor's
// step count so traces show where the budget went. No-op when tracing is
// off.
func endEvalSpan(sp *obs.Span, g *govern.Governor) {
	sp.SetInt("steps", g.Steps())
	sp.End()
}

// degradedVerdict builds the OutcomeUnknown verdict for a cut-off
// exponential search: partial search evidence plus a bounded Monte-Carlo
// estimate of the repair-satisfaction frequency. The sampling pass runs
// under its own small governor (the parent's is already tripped, so ctx's
// cancellation is stripped while its values — the tracer among them —
// survive), and it terminates promptly even after a SIGINT or deadline.
func degradedVerdict(ctx context.Context, g *govern.Governor, q cq.Query, d *db.DB, res Result, sev searchEvidence, opts Options) Verdict {
	ev := &Evidence{
		Steps:         g.Steps(),
		TotalBlocks:   sev.totalBlocks,
		BestDepth:     sev.bestDepth,
		BestCandidate: sev.bestChosen,
	}
	v := Verdict{Outcome: OutcomeUnknown, Result: res, Err: g.Err(), Evidence: ev}
	sampleInto(context.WithoutCancel(ctx), &v, q, d, opts)
	return v
}

// sampleInto runs the bounded Monte-Carlo degradation pass and folds its
// results into v's evidence. A sampled falsifying repair is a conclusive
// one-sided witness, so it upgrades the verdict to OutcomeNotCertain and
// clears the cutoff error. The pass runs under its own small governor
// derived from ctx, so it terminates promptly even when the caller's
// governor has already tripped (pass context.Background then).
func sampleInto(ctx context.Context, v *Verdict, q cq.Query, d *db.DB, opts Options) {
	samples := opts.DegradeSamples
	if samples == 0 {
		samples = 1024
	}
	if samples < 0 {
		return
	}
	timeout := opts.SampleTimeout
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	ctx, sp := obs.StartSpan(ctx, "degrade/sample")
	sg := govern.New(ctx, govern.Options{Timeout: timeout})
	defer sg.Close()
	est, drawn, falsifier, _ := prob.EstimateSatisfactionCtx(sg.Attach(), q, d, samples, opts.SampleSeed)
	sp.SetInt("samples", int64(drawn))
	sp.End()
	v.Evidence.Samples = drawn
	v.Evidence.Estimate = est
	if falsifier != nil {
		v.Evidence.FalsifyingSample = falsifier
		v.Outcome = OutcomeNotCertain
		v.Result.Certain = false
		v.Err = nil
	}
}

// ErrExactSkipped is the Verdict.Err of a solve that deliberately skipped
// the exact decision procedure — a server whose circuit breaker is open
// short-circuits hard queries straight to the Monte-Carlo degraded path.
var ErrExactSkipped = errors.New("solver: exact search skipped (degraded mode)")

// Degraded answers a CERTAINTY(q) request with the bounded Monte-Carlo
// degradation pass only, skipping the exact decision procedure entirely.
// It is the fast fallback a resilient server uses when repeated cutoffs
// show the exact coNP-path search cannot finish within policy: the verdict
// is OutcomeUnknown with Err = ErrExactSkipped and a sampled
// repair-satisfaction estimate — unless a sampled repair falsifies q, which
// is a conclusive OutcomeNotCertain witness. The classification is still
// exact (it is polynomial in the query alone).
func Degraded(ctx context.Context, q cq.Query, d *db.DB, opts Options) (Verdict, error) {
	cls, err := core.Classify(q)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		Outcome:  OutcomeUnknown,
		Result:   Result{Classification: cls, SimplifiedClass: cls.Class, Method: MethodFalsifying},
		Err:      ErrExactSkipped,
		Evidence: &Evidence{},
	}
	err = govern.Safe(func() error {
		sampleInto(ctx, &v, q, d, opts)
		return nil
	})
	if err != nil {
		return Verdict{}, err
	}
	return v, nil
}
