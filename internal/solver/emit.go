package solver

import (
	"errors"
	"fmt"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/fo"
)

// ErrNotEmittable reports that a plan's query is outside the FO class, so
// no first-order rewriting exists to compile to a backend. Callers should
// fall back to native solving (/v1/solve).
var ErrNotEmittable = errors.New("solver: query is not in the FO class; no rewriting to emit")

// NotEmittableError wraps ErrNotEmittable with the query's classification
// so callers (the /v1/compile handler) can report which class the query
// landed in.
type NotEmittableError struct {
	Classification core.Classification
}

func (e *NotEmittableError) Error() string {
	return fmt.Sprintf("%v (class %s)", ErrNotEmittable, e.Classification.Class.Code())
}

func (e *NotEmittableError) Unwrap() error { return ErrNotEmittable }

// EmitSQL lowers the plan's first-order rewriting to a self-contained SQL
// statement (see internal/emit). Only FO-class plans are emittable; others
// return a *NotEmittableError carrying the classification.
func (p *Plan) EmitSQL() (emit.Program, error) {
	q, phi, method, err := p.rewriting()
	if err != nil {
		return emit.Program{}, err
	}
	return emit.SQL(q, phi, method)
}

// EmitDatalog lowers the plan's first-order rewriting to a stratified
// Datalog program (see internal/emit). Only FO-class plans are emittable;
// others return a *NotEmittableError carrying the classification.
func (p *Plan) EmitDatalog() (emit.Program, error) {
	q, phi, method, err := p.rewriting()
	if err != nil {
		return emit.Program{}, err
	}
	return emit.Datalog(q, phi, method)
}

// rewriting reconstructs the plan's FO rewriting over the canonicalized
// query. Canonicalizing first (sorted atoms, renamed variables) makes the
// emitted program invariant under atom-order shuffles of the input query.
func (p *Plan) rewriting() (cq.Query, fo.Formula, string, error) {
	if p.Class != core.ClassFO {
		return cq.Query{}, nil, "", &NotEmittableError{Classification: p.cls}
	}
	canon, _ := cq.Canonicalize(p.Query)
	code, err := p.Method.MarshalText()
	if err != nil {
		return cq.Query{}, nil, "", err
	}
	var phi fo.Formula
	switch p.Method {
	case MethodSafeRewriting:
		phi, err = fo.RewriteSafe(canon)
	case MethodFO:
		phi, err = fo.RewriteAcyclic(canon)
	default:
		return cq.Query{}, nil, "", fmt.Errorf("solver: FO-class plan with unexpected method %s", code)
	}
	if err != nil {
		return cq.Query{}, nil, "", fmt.Errorf("solver: rebuilding rewriting: %w", err)
	}
	return canon, phi, string(code), nil
}
