// Package solver implements every decision procedure for CERTAINTY(q) the
// paper describes: brute-force repair enumeration (ground truth), the
// first-order rewriting procedure for acyclic attack graphs (Theorem 1),
// the polynomial algorithm for weak terminal cycles (Theorem 3) with its
// two-atom base-case solver, the graph-marking algorithm for AC(k)
// (Theorem 4) and C(k) (Corollary 1), a pruned exponential search for
// coNP-classified queries, and a dispatcher driven by the classifier.
package solver

import (
	"context"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/govern"
)

// BruteForce decides db ∈ CERTAINTY(q) by enumerating every repair and
// evaluating q on each. Exponential in the number of non-singleton blocks;
// the ground truth for all other solvers.
func BruteForce(q cq.Query, d *db.DB) bool {
	certain := true
	d.EachRepair(func(r []db.Fact) bool {
		if !engine.EvalRepair(q, r) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// BruteForceCtx is BruteForce with cooperative cancellation: the
// enumeration aborts with the governor's error on cancellation, deadline,
// or budget exhaustion. The decision is unspecified when the error is
// non-nil.
func BruteForceCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	certain := true
	_, err := d.EachRepairCtx(ctx, func(r []db.Fact) bool {
		if !engine.EvalRepair(q, r) {
			certain = false
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return certain, nil
}

// selection is a mutable stack of chosen facts with per-relation indexes,
// supporting the incremental satisfaction check of FalsifyingRepair.
type selection struct {
	q     cq.Query
	byRel map[string][]db.Fact
}

func newSelection(q cq.Query) *selection {
	return &selection{q: q, byRel: make(map[string][]db.Fact, q.Len())}
}

func (s *selection) push(f db.Fact) { s.byRel[f.Rel] = append(s.byRel[f.Rel], f) }

func (s *selection) pop(f db.Fact) {
	l := s.byRel[f.Rel]
	s.byRel[f.Rel] = l[:len(l)-1]
}

// satisfiedUsing reports whether the selection satisfies q through an
// embedding that uses f. Under the invariant that the selection did not
// satisfy q before f was pushed, this decides whether it does now.
func (s *selection) satisfiedUsing(f db.Fact) bool {
	for i, a := range s.q.Atoms {
		if a.Rel != f.Rel {
			continue
		}
		binding, ok := engine.MatchAtom(a, f, cq.Valuation{})
		if !ok {
			continue
		}
		if s.extend(binding, i, 0) {
			return true
		}
	}
	return false
}

// extend completes a partial embedding over the remaining atoms (skipping
// the anchored one) by scanning the selected facts of each relation.
func (s *selection) extend(binding cq.Valuation, anchor, next int) bool {
	if next == s.q.Len() {
		return true
	}
	if next == anchor {
		return s.extend(binding, anchor, next+1)
	}
	a := s.q.Atoms[next]
	for _, g := range s.byRel[a.Rel] {
		if ext, ok := engine.MatchAtom(a, g, binding); ok {
			if s.extend(ext, anchor, next+1) {
				return true
			}
		}
	}
	return false
}

// FalsifyingRepair searches for a repair of d falsifying q using
// block-by-block backtracking with satisfaction pruning: as soon as the
// partial selection already satisfies q, every completion does too, and the
// branch is cut. Returns the falsifying repair and true if one exists.
// Worst-case exponential (CERTAINTY(q) is coNP-complete for strong-cycle
// queries), but vastly faster than plain enumeration on typical instances.
func FalsifyingRepair(q cq.Query, d *db.DB) ([]db.Fact, bool) {
	return falsifyingRepair(q, d, true)
}

// FalsifyingRepairStatic is FalsifyingRepair with the dynamic fail-first
// block ordering disabled (blocks are tried in database order). Exposed for
// the ordering ablation in the benchmark harness; prefer FalsifyingRepair.
func FalsifyingRepairStatic(q cq.Query, d *db.DB) ([]db.Fact, bool) {
	return falsifyingRepair(q, d, false)
}

func falsifyingRepair(q cq.Query, d *db.DB, dynamic bool) ([]db.Fact, bool) {
	rels := make(map[string]bool, q.Len())
	for _, a := range q.Atoms {
		rels[a.Rel] = true
	}
	var relevant, irrelevant [][]db.Fact
	for _, b := range d.Blocks() {
		if rels[b[0].Rel] {
			relevant = append(relevant, b)
		} else {
			irrelevant = append(irrelevant, b)
		}
	}
	if q.IsEmpty() {
		return nil, false // the empty query holds in every repair
	}
	sel := newSelection(q)
	var chosen []db.Fact
	done := make([]bool, len(relevant))
	// Fail-first dynamic ordering: at each node, branch on the remaining
	// block with the fewest safe (non-satisfying) choices. Blocks with zero
	// safe choices cut the branch immediately, which makes the search
	// behave like DPLL on constraint-style instances. The static variant
	// processes blocks in database order instead.
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		safeOf := func(blk []db.Fact) []db.Fact {
			var safe []db.Fact
			for _, f := range blk {
				sel.push(f)
				if !sel.satisfiedUsing(f) {
					safe = append(safe, f)
				}
				sel.pop(f)
			}
			return safe
		}
		var best int
		var bestSafe []db.Fact
		if dynamic {
			best = -1
			for i, blk := range relevant {
				if done[i] {
					continue
				}
				safe := safeOf(blk)
				if best == -1 || len(safe) < len(bestSafe) {
					best, bestSafe = i, safe
					if len(safe) == 0 {
						return false
					}
				}
			}
		} else {
			best = -1
			for i := range relevant {
				if !done[i] {
					best = i
					break
				}
			}
			bestSafe = safeOf(relevant[best])
		}
		done[best] = true
		for _, f := range bestSafe {
			sel.push(f)
			chosen = append(chosen, f)
			if rec(remaining - 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			sel.pop(f)
		}
		done[best] = false
		return false
	}
	if !rec(len(relevant)) {
		return nil, false
	}
	// Facts of relations outside q never influence satisfaction; complete
	// the repair with an arbitrary choice per irrelevant block.
	out := append([]db.Fact(nil), chosen...)
	for _, b := range irrelevant {
		out = append(out, b[0])
	}
	return out, true
}

// CertainByFalsifying decides certainty via FalsifyingRepair.
func CertainByFalsifying(q cq.Query, d *db.DB) bool {
	_, found := FalsifyingRepair(q, d)
	return !found
}

// searchEvidence records the partial progress of a governed falsifying
// search: how deep it got before being cut off, and the deepest partial
// selection — the best falsifying candidate found so far (every completion
// of it was still open when the search stopped).
type searchEvidence struct {
	totalBlocks int       // relevant blocks in the search space
	bestDepth   int       // most blocks ever simultaneously fixed
	bestChosen  []db.Fact // the selection at that depth
}

// falsifyingRepairGov is the governed core of the falsifying-repair search
// (dynamic fail-first ordering): one governor step per search node. On
// cutoff it returns the governor's error together with the evidence
// accumulated so far.
func falsifyingRepairGov(g *govern.Governor, q cq.Query, d *db.DB) ([]db.Fact, bool, searchEvidence, error) {
	var ev searchEvidence
	rels := make(map[string]bool, q.Len())
	for _, a := range q.Atoms {
		rels[a.Rel] = true
	}
	var relevant, irrelevant [][]db.Fact
	for _, b := range d.Blocks() {
		if rels[b[0].Rel] {
			relevant = append(relevant, b)
		} else {
			irrelevant = append(irrelevant, b)
		}
	}
	ev.totalBlocks = len(relevant)
	if q.IsEmpty() {
		return nil, false, ev, nil // the empty query holds in every repair
	}
	sel := newSelection(q)
	var chosen []db.Fact
	done := make([]bool, len(relevant))
	var rec func(remaining int) (bool, error)
	rec = func(remaining int) (bool, error) {
		if err := g.Step(); err != nil {
			return false, err
		}
		if remaining == 0 {
			return true, nil
		}
		best, bestSafe := -1, []db.Fact(nil)
		for i, blk := range relevant {
			if done[i] {
				continue
			}
			var safe []db.Fact
			for _, f := range blk {
				sel.push(f)
				if !sel.satisfiedUsing(f) {
					safe = append(safe, f)
				}
				sel.pop(f)
			}
			if best == -1 || len(safe) < len(bestSafe) {
				best, bestSafe = i, safe
				if len(safe) == 0 {
					return false, nil
				}
			}
		}
		done[best] = true
		for _, f := range bestSafe {
			sel.push(f)
			chosen = append(chosen, f)
			if len(chosen) > ev.bestDepth {
				ev.bestDepth = len(chosen)
				ev.bestChosen = append(ev.bestChosen[:0], chosen...)
			}
			found, err := rec(remaining - 1)
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
			chosen = chosen[:len(chosen)-1]
			sel.pop(f)
		}
		done[best] = false
		return false, nil
	}
	found, err := rec(len(relevant))
	if err != nil {
		return nil, false, ev, err
	}
	if !found {
		return nil, false, ev, nil
	}
	out := append([]db.Fact(nil), chosen...)
	for _, b := range irrelevant {
		out = append(out, b[0])
	}
	return out, true, ev, nil
}

// FalsifyingRepairContext is FalsifyingRepair with cooperative
// cancellation: the search aborts with the governor's error (ctx.Err(),
// budget exhaustion, or an injected fault) when the governor trips. Use it
// to bound the exponential search on coNP-classified instances.
func FalsifyingRepairContext(ctx context.Context, q cq.Query, d *db.DB) ([]db.Fact, bool, error) {
	rep, found, _, err := falsifyingRepairGov(govern.From(ctx), q, d)
	return rep, found, err
}

// CertainByFalsifyingCtx is CertainByFalsifying with cooperative
// cancellation; the decision is unspecified when the error is non-nil.
func CertainByFalsifyingCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	_, found, err := FalsifyingRepairContext(ctx, q, d)
	if err != nil {
		return false, err
	}
	return !found, nil
}
