package solver

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/graph"
)

// cycleGraph is the k-partite fact graph of the Theorem 4 algorithm:
// vertices are (cycle position, constant) pairs, edges come from the
// R_i facts, and marked cycles C come from the S_k facts.
type cycleGraph struct {
	k      int
	g      *graph.Digraph
	ids    map[string]int // encoded (pos, value) → vertex id
	names  []string       // vertex id → debug name
	values []string       // vertex id → constant value
	pos    []int          // vertex id → cycle position
}

func newCycleGraph(k int) *cycleGraph {
	return &cycleGraph{k: k, g: nil, ids: make(map[string]int)}
}

func (cg *cycleGraph) vertexKey(pos int, value string) string {
	return strconv.Itoa(pos) + "/" + strconv.Itoa(len(value)) + ":" + value
}

func (cg *cycleGraph) vertex(pos int, value string) int {
	key := cg.vertexKey(pos, value)
	if id, ok := cg.ids[key]; ok {
		return id
	}
	id := len(cg.names)
	cg.ids[key] = id
	cg.names = append(cg.names, fmt.Sprintf("x%d=%s", pos+1, value))
	cg.values = append(cg.values, value)
	cg.pos = append(cg.pos, pos)
	return id
}

// normalizeCycle rotates a cycle to start at its smallest vertex id.
func normalizeCycle(c []int) string {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	parts := make([]string, len(c))
	for i := range c {
		parts[i] = strconv.Itoa(c[(min+i)%len(c)])
	}
	return strings.Join(parts, ",")
}

// CertainACk decides db ∈ CERTAINTY(AC(k)) in polynomial time (Theorem 4).
// The query must match the AC(k) shape; use core.MatchCycleShape or the
// dispatcher. Steps, following the proof:
//
//  1. Purify db relative to q (Lemma 1).
//  2. Build the k-partite digraph G whose vertices are (position, value)
//     pairs — positions make the type classes disjoint, as the proof
//     assumes w.l.o.g. — with an edge per R_i fact, and collect the cycle
//     set C from the S_k facts.
//  3. db ∉ CERTAINTY(q) iff one outgoing edge per vertex can be marked
//     without marking all edges of a cycle in C, which holds iff every
//     strong component of G contains a k-cycle outside C or an elementary
//     cycle longer than k.
func CertainACk(q cq.Query, shape *core.CycleShape, d *db.DB) (bool, error) {
	return CertainACkCtx(context.Background(), q, shape, d)
}

// CertainACkCtx is CertainACk with cooperative cancellation: the governor
// bounds the purification pass and the per-component cycle analysis.
func CertainACkCtx(ctx context.Context, q cq.Query, shape *core.CycleShape, d *db.DB) (bool, error) {
	if shape == nil || shape.SkAtom < 0 {
		return false, fmt.Errorf("solver: CertainACk requires an AC(k) shape")
	}
	d, err := engine.PurifyCtx(ctx, q, d)
	if err != nil {
		return false, err
	}
	if d.Len() == 0 {
		return false, nil
	}
	cg, comps, err := buildCycleGraph(q, shape, d, true)
	if err != nil {
		return false, err
	}
	return decideByComponentsCtx(ctx, cg, comps, cg.markedCycles(q, shape, d))
}

// CertainCk decides db ∈ CERTAINTY(C(k)) in polynomial time (Corollary 1).
// By Lemma 9, C(k) reduces to AC(k) with S_k containing every tuple over
// the active domain; every k-cycle of the fact graph is then in C, so a
// strong component is falsifiable iff it contains an elementary cycle
// longer than k. The S_k relation is never materialized.
func CertainCk(q cq.Query, shape *core.CycleShape, d *db.DB) (bool, error) {
	return CertainCkCtx(context.Background(), q, shape, d)
}

// CertainCkCtx is CertainCk with cooperative cancellation.
func CertainCkCtx(ctx context.Context, q cq.Query, shape *core.CycleShape, d *db.DB) (bool, error) {
	if shape == nil || shape.SkAtom >= 0 {
		return false, fmt.Errorf("solver: CertainCk requires a C(k) shape")
	}
	d, err := engine.PurifyCtx(ctx, q, d)
	if err != nil {
		return false, err
	}
	if d.Len() == 0 {
		return false, nil
	}
	cg, comps, err := buildCycleGraph(q, shape, d, false)
	if err != nil {
		return false, err
	}
	return decideByComponentsCtx(ctx, cg, comps, nil)
}

// buildCycleGraph constructs the fact graph and its strong components. When
// the database is purified, no edge crosses strong components (every fact
// lies on a cycle witnessed by an embedding); the components are returned
// as vertex sets.
func buildCycleGraph(q cq.Query, shape *core.CycleShape, d *db.DB, withSk bool) (*cycleGraph, [][]int, error) {
	k := shape.K
	cg := newCycleGraph(k)
	type pendingEdge struct{ u, v int }
	var edges []pendingEdge
	for pos, atomIdx := range shape.CycleAtoms {
		rel := q.Atoms[atomIdx].Rel
		for _, f := range d.RelationFacts(rel) {
			u := cg.vertex(pos, f.Args[0])
			v := cg.vertex((pos+1)%k, f.Args[1])
			edges = append(edges, pendingEdge{u, v})
		}
	}
	cg.g = graph.New(len(cg.names))
	for _, e := range edges {
		cg.g.AddEdge(e.u, e.v)
	}
	return cg, cg.g.SCCs(), nil
}

// markedCycles returns the normalized encodings of the cycles in C, read
// from the S_k facts through the shape's position permutation.
func (cg *cycleGraph) markedCycles(q cq.Query, shape *core.CycleShape, d *db.DB) map[string]bool {
	out := make(map[string]bool)
	rel := q.Atoms[shape.SkAtom].Rel
	for _, f := range d.RelationFacts(rel) {
		cycle := make([]int, shape.K)
		ok := true
		for j, val := range f.Args {
			p := shape.SkPositions[j]
			key := cg.vertexKey(p, val)
			id, exists := cg.ids[key]
			if !exists {
				// The S_k fact references a value with no incident R-edge;
				// it can never be fully marked, so it constrains nothing.
				ok = false
				break
			}
			cycle[p] = id
		}
		if ok {
			out[normalizeCycle(cycle)] = true
		}
	}
	return out
}

// decideByComponents applies the per-component case analysis of Theorem 4's
// proof. inC is the set of normalized k-cycles belonging to C; nil means
// "every k-cycle is in C" (the C(k) case).
//
// A component admits a marking iff it contains a k-cycle not in C, or an
// elementary cycle of length > k. db is certain iff some component admits
// no marking. Components that are single vertices without self-loops
// cannot occur on purified databases (every vertex lies on a cycle of
// length k); they are treated as admitting no marking, which errs on the
// side of "certain" and is exercised only through direct API misuse.
func decideByComponents(cg *cycleGraph, comps [][]int, inC map[string]bool) bool {
	for _, comp := range comps {
		if markableComponent(cg, comp, inC) {
			continue
		}
		return true // some strong component forces q in every repair
	}
	return false
}

// decideByComponentsCtx is decideByComponents with one governor step
// charged per strong component.
func decideByComponentsCtx(ctx context.Context, cg *cycleGraph, comps [][]int, inC map[string]bool) (bool, error) {
	g := govern.From(ctx)
	for _, comp := range comps {
		if err := g.Step(); err != nil {
			return false, err
		}
		if markableComponent(cg, comp, inC) {
			continue
		}
		return true, nil // some strong component forces q in every repair
	}
	return false, nil
}

func markableComponent(cg *cycleGraph, comp []int, inC map[string]bool) bool {
	sub, orig := cg.g.Subgraph(comp)
	if inC != nil {
		for _, c := range sub.CyclesOfLength(cg.k) {
			mapped := make([]int, len(c))
			for i, v := range c {
				mapped[i] = orig[v]
			}
			if !inC[normalizeCycle(mapped)] {
				return true
			}
		}
	}
	if _, ok := sub.HasCycleLongerThan(cg.k); ok {
		return true
	}
	return false
}

// sortedComponentSizes is a debugging helper exposing component structure.
func sortedComponentSizes(comps [][]int) []int {
	out := make([]int, len(comps))
	for i, c := range comps {
		out[i] = len(c)
	}
	sort.Ints(out)
	return out
}
