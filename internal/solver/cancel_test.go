package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
)

// oddRingDB builds an instance of q0 = {R0(x|y), S0(y,z|x)} over a ring of n
// "pigeons" x0..x{n-1}: each pigeon's R0 block picks a color A or B, and for
// each color the S0 block (c, zi) must attack xi or its successor x{i+1}. A
// falsifying repair assigns every pigeon a color not attacked by either
// neighboring S0 block of that color, which forces adjacent pigeons onto
// different colors — a proper 2-coloring of the ring. Hence the instance is
// certain iff n is odd, and the falsifying search must traverse the whole
// ring (≈6n nodes) before it can conclude either way.
func oddRingDB(n int) *db.DB {
	d := db.New()
	add := func(f db.Fact) {
		if err := d.Add(f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		xi := fmt.Sprintf("x%d", i)
		xn := fmt.Sprintf("x%d", (i+1)%n)
		zi := fmt.Sprintf("z%d", i)
		add(db.NewFact("R0", 1, xi, "A"))
		add(db.NewFact("R0", 1, xi, "B"))
		add(db.NewFact("S0", 2, "A", zi, xi))
		add(db.NewFact("S0", 2, "A", zi, xn))
		add(db.NewFact("S0", 2, "B", zi, xi))
		add(db.NewFact("S0", 2, "B", zi, xn))
	}
	return d
}

func TestOddRingParity(t *testing.T) {
	q := cq.Q0()
	if !CertainByFalsifying(q, oddRingDB(5)) {
		t.Error("odd ring should be certain (no proper 2-coloring of C5)")
	}
	if CertainByFalsifying(q, oddRingDB(6)) {
		t.Error("even ring should not be certain (C6 is 2-colorable)")
	}
}

// TestFaultInjectionCancelsSearch drives every context-aware decision
// procedure with the governor's fault hook, making cancellation strike
// deterministically mid-search, and asserts the injected error surfaces.
func TestFaultInjectionCancelsSearch(t *testing.T) {
	q0 := cq.Q0()
	ring := oddRingDB(9)
	// CertainFO refuses strong-cycle queries like q0, so the FO case runs a
	// primary-key query over enough blocks to guarantee several steps.
	qFO := cq.MustParseQuery("R(x | y)")
	dFO := db.MustParse("R(a | b), R(a | c), R(d | e), R(d | f), R(g | h), R(g | i)")
	cases := []struct {
		name    string
		faultAt int64
		run     func(ctx context.Context) error
	}{
		{"BruteForceCtx", 5, func(ctx context.Context) error {
			_, err := BruteForceCtx(ctx, q0, ring)
			return err
		}},
		{"CertainByFalsifyingCtx", 5, func(ctx context.Context) error {
			_, err := CertainByFalsifyingCtx(ctx, q0, ring)
			return err
		}},
		{"FalsifyingRepairContext", 5, func(ctx context.Context) error {
			_, _, err := FalsifyingRepairContext(ctx, q0, ring)
			return err
		}},
		{"CertainFOCtx", 1, func(ctx context.Context) error {
			_, err := CertainFOCtx(ctx, qFO, dFO)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			boom := errors.New("injected fault")
			g := govern.New(context.Background(), govern.Options{
				Fault: func(step int64) error {
					if step >= tc.faultAt {
						return boom
					}
					return nil
				},
			})
			defer g.Close()
			err := tc.run(g.Attach())
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want the injected fault", err)
			}
			if g.Steps() < tc.faultAt {
				t.Fatalf("search stopped after %d steps, before the fault could fire", g.Steps())
			}
		})
	}
}

// TestCanceledContextSurfaces verifies that an already-canceled context makes
// every context-aware procedure return context.Canceled rather than compute.
func TestCanceledContextSurfaces(t *testing.T) {
	q := cq.Q0()
	d := oddRingDB(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"BruteForceCtx", func(ctx context.Context) error {
			_, err := BruteForceCtx(ctx, q, d)
			return err
		}},
		{"CertainByFalsifyingCtx", func(ctx context.Context) error {
			_, err := CertainByFalsifyingCtx(ctx, q, d)
			return err
		}},
		{"CertainFOCtx", func(ctx context.Context) error {
			_, err := CertainFOCtx(ctx, q, d)
			return err
		}},
		{"CertainTerminalCtx", func(ctx context.Context) error {
			_, err := CertainTerminalCtx(ctx, cq.MustParseQuery("R(x | y), S(y | z)"), db.MustParse("R(a | b), S(b | c)"))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// CheckEvery: 1 makes the poll immediate, so the assertion does
			// not depend on the instance being large enough to reach the
			// default polling interval.
			g := govern.New(ctx, govern.Options{CheckEvery: 1})
			defer g.Close()
			err := tc.run(g.Attach())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestCancellationLatency is the wall-clock half of the acceptance criterion:
// a brute-force enumeration over 2^60 repairs (which would run for centuries
// uncancelled) must return within moments of its 50ms deadline.
func TestCancellationLatency(t *testing.T) {
	// Sixty two-fact blocks, and a query every repair satisfies, so the
	// enumeration cannot stop early on a falsifying repair — certainty
	// requires visiting all 2^60 of them.
	d := db.New()
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := d.Add(db.NewFact("R", 1, k, "a")); err != nil {
			t.Fatal(err)
		}
		if err := d.Add(db.NewFact("R", 1, k, "b")); err != nil {
			t.Fatal(err)
		}
	}
	q := cq.MustParseQuery("R(x | y)")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := BruteForceCtx(ctx, q, d)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("took %v to notice a 50ms deadline", elapsed)
	}
}

// TestSolveCtxBudgetDegradesToSampling is the degradation half of the
// acceptance criterion: budget exhaustion on a coNP-classified instance must
// yield an Unknown verdict carrying partial search evidence and a sampled
// repair-satisfaction estimate. The odd ring is certain and needs ≈6n search
// nodes, so a budget of 60 on n=21 (≈121 nodes) cuts off deterministically,
// and the sampler — unable to find a falsifying repair of a certain instance
// — reports estimate 1 without upgrading the verdict.
func TestSolveCtxBudgetDegradesToSampling(t *testing.T) {
	q := cq.Q0()
	d := oddRingDB(21)
	v, err := SolveCtx(context.Background(), q, d, Options{
		Budget:         60,
		DegradeSamples: 200,
		SampleSeed:     1,
	})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	if v.Outcome != OutcomeUnknown {
		t.Fatalf("Outcome = %v, want unknown", v.Outcome)
	}
	if !errors.Is(v.Err, govern.ErrBudget) {
		t.Fatalf("Verdict.Err = %v, want ErrBudget", v.Err)
	}
	if v.Result.Method != MethodFalsifying {
		t.Fatalf("Method = %v, want falsifying", v.Result.Method)
	}
	ev := v.Evidence
	if ev == nil {
		t.Fatal("Unknown verdict without evidence")
	}
	if ev.Steps < 60 {
		t.Errorf("Steps = %d, want >= the 60-step budget", ev.Steps)
	}
	if ev.TotalBlocks == 0 {
		t.Error("TotalBlocks = 0, want the falsifying search space size")
	}
	if ev.BestDepth == 0 || len(ev.BestCandidate) != ev.BestDepth {
		t.Errorf("BestDepth = %d with %d candidate facts; want a consistent non-empty partial candidate",
			ev.BestDepth, len(ev.BestCandidate))
	}
	if ev.Samples != 200 {
		t.Errorf("Samples = %d, want 200", ev.Samples)
	}
	if ev.Estimate != 1.0 {
		t.Errorf("Estimate = %v, want exactly 1 on a certain instance", ev.Estimate)
	}
	if ev.FalsifyingSample != nil {
		t.Errorf("sampled a falsifying repair of a certain instance: %v", ev.FalsifyingSample)
	}
}

// TestSolveCtxSamplingUpgradesToNotCertain: when the cut-off instance is not
// certain and falsifying repairs are abundant, the degradation sampler finds
// one, which is a conclusive witness — the verdict upgrades from Unknown to
// NotCertain.
func TestSolveCtxSamplingUpgradesToNotCertain(t *testing.T) {
	q := cq.Q0()
	// No S0 facts at all, so every repair falsifies q0. The fault hook trips
	// the search on its very first step, before it can find that out.
	d := db.MustParse("R0(a | b), R0(a | c)")
	boom := errors.New("injected fault")
	v, err := SolveCtx(context.Background(), q, d, Options{
		Fault:          func(int64) error { return boom },
		DegradeSamples: 50,
		SampleSeed:     3,
	})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	if v.Outcome != OutcomeNotCertain {
		t.Fatalf("Outcome = %v, want not certain (sampled witness)", v.Outcome)
	}
	if v.Err != nil {
		t.Fatalf("Verdict.Err = %v, want nil once a conclusive witness exists", v.Err)
	}
	if v.Result.Certain {
		t.Fatal("Result.Certain = true on a falsified instance")
	}
	if v.Evidence == nil || v.Evidence.FalsifyingSample == nil {
		t.Fatal("missing the sampled falsifying repair")
	}
}

// TestSolveCtxPanicContained: a panic escaping from deep inside the governed
// search (here: a panicking fault hook) must come back as an error, not crash
// the process.
func TestSolveCtxPanicContained(t *testing.T) {
	q := cq.Q0()
	d := oddRingDB(5)
	_, err := SolveCtx(context.Background(), q, d, Options{
		Fault: func(int64) error { panic("kaboom") },
	})
	var pe *govern.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a contained PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("PanicError.Value = %v, want kaboom", pe.Value)
	}
}

// TestSolveCtxUnlimitedMatchesSolve: with zero options, SolveCtx is Solve
// plus governance plumbing — outcomes must agree.
func TestSolveCtxUnlimitedMatchesSolve(t *testing.T) {
	cases := []struct {
		name string
		q    cq.Query
		d    *db.DB
	}{
		{"odd ring (coNP, certain)", cq.Q0(), oddRingDB(5)},
		{"even ring (coNP, not certain)", cq.Q0(), oddRingDB(6)},
		{"FO", cq.MustParseQuery("R(x | y)"), db.MustParse("R(a | b), R(a | c), R(d | e)")},
		{"terminal", cq.MustParseQuery("R(x | y), S(y | z)"), db.MustParse("R(a | b), R(a | c), S(b | d), S(c | d)")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := SolveResult(tc.q, tc.d)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			v, err := SolveCtx(context.Background(), tc.q, tc.d, Options{})
			if err != nil {
				t.Fatalf("SolveCtx: %v", err)
			}
			if v.Outcome == OutcomeUnknown {
				t.Fatalf("unlimited solve returned unknown (err %v)", v.Err)
			}
			if v.Result.Certain != want.Certain {
				t.Fatalf("Certain = %v, Solve says %v", v.Result.Certain, want.Certain)
			}
			if (v.Outcome == OutcomeCertain) != want.Certain {
				t.Fatalf("Outcome %v disagrees with Certain=%v", v.Outcome, want.Certain)
			}
		})
	}
}

// TestParallelACkCtxCanceled: the parallel AC(k) fan-out must respect its
// caller's context instead of running the component sweep to completion.
func TestParallelACkCtxCanceled(t *testing.T) {
	q := cq.ACk(3)
	shape, ok := core.MatchCycleShape(q, true)
	if !ok {
		t.Fatal("ACk(3) should match the cycle shape")
	}
	d := gen.CycleDB(gen.CycleConfig{K: 3, Components: 13, Width: 2, EncodeAll: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := govern.New(ctx, govern.Options{CheckEvery: 1})
	defer g.Close()
	_, err := CertainACkParallelCtx(g.Attach(), q, shape, d, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelACkNoGoroutineLeak runs the parallel decision repeatedly —
// including the early-exit path that previously left workers draining the
// job channel — and asserts the goroutine count settles back down.
func TestParallelACkNoGoroutineLeak(t *testing.T) {
	q := cq.ACk(3)
	shape, ok := core.MatchCycleShape(q, true)
	if !ok {
		t.Fatal("ACk(3) should match the cycle shape")
	}
	dbs := []*db.DB{
		gen.CycleDB(gen.CycleConfig{K: 3, Components: 13, Width: 2, EncodeAll: true}),
		gen.CycleDB(gen.CycleConfig{K: 3, Components: 13, Width: 2}),
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		for _, d := range dbs {
			want, err := CertainACk(q, shape, d)
			if err != nil {
				t.Fatalf("CertainACk: %v", err)
			}
			got, err := CertainACkParallelCtx(context.Background(), q, shape, d, 8)
			if err != nil {
				t.Fatalf("CertainACkParallelCtx: %v", err)
			}
			if got != want {
				t.Fatalf("parallel = %v, serial = %v", got, want)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
