package solver

import (
	"context"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/obs"
)

// findSpan returns the first span with the given name, or nil.
func findSpan(recs []obs.SpanRecord, name string) *obs.SpanRecord {
	for i := range recs {
		if recs[i].Name == name {
			return &recs[i]
		}
	}
	return nil
}

func attr(r *obs.SpanRecord, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestSpanTreePerFamily runs one traced solve per paper family — FO
// (Theorem 1), terminal cycles in P (Theorem 3), AC(k) (Theorem 4), and the
// coNP-hard falsifying search (Theorem 2) — and asserts the recorded span
// tree: a classify span and the family's eval span parented under the solve
// root, non-zero durations, and completion order (children recorded before
// their parent).
func TestSpanTreePerFamily(t *testing.T) {
	ackQ := cq.ACk(3)
	terminalQ := cq.TerminalCyclesQuery()
	cases := []struct {
		name     string
		q        cq.Query
		d        *db.DB
		evalSpan string
		class    string
	}{
		{
			name:     "fo",
			q:        cq.MustParseQuery("R(x | y)"),
			d:        db.MustParse("R(a | b), R(a | c)"),
			evalSpan: "eval/fo-rewriting",
			class:    "fo",
		},
		{
			name:     "terminal",
			q:        terminalQ,
			d:        gen.RandomDB(terminalQ, gen.Config{Embeddings: 3, Noise: 2, Domain: 3}, 1),
			evalSpan: "eval/terminal",
			class:    "ptime-terminal",
		},
		{
			name:     "ack",
			q:        ackQ,
			d:        gen.RandomDB(ackQ, gen.Config{Embeddings: 3, Noise: 2, Domain: 3}, 1),
			evalSpan: "eval/ack-marking",
			class:    "ptime-ack",
		},
		{
			name:     "conp",
			q:        cq.Q0(),
			d:        oddRingDB(5),
			evalSpan: "eval/falsifying-search",
			class:    "conp-complete",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := obs.NewTracer(obs.TracerOptions{})
			ctx := obs.WithTracer(context.Background(), tr)
			v, err := SolveCtx(ctx, tc.q, tc.d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Outcome == OutcomeUnknown {
				t.Fatalf("unlimited solve came back unknown: %+v", v)
			}
			recs := tr.Snapshot()
			root := findSpan(recs, "solve")
			if root == nil {
				t.Fatalf("no solve root span in %v", recs)
			}
			if root.ParentID != 0 {
				t.Fatalf("solve root has parent %d", root.ParentID)
			}
			if got := attr(root, "class"); got != tc.class {
				t.Errorf("root class attr = %q, want %q", got, tc.class)
			}
			if attr(root, "steps") == "" {
				t.Error("root span must carry the governor step count")
			}
			for _, name := range []string{"classify", tc.evalSpan} {
				sp := findSpan(recs, name)
				if sp == nil {
					t.Fatalf("span %q missing; recorded %s", name, obs.FormatTree(recs))
				}
				if sp.ParentID != root.ID {
					t.Errorf("%q parent = %d, want solve root %d", name, sp.ParentID, root.ID)
				}
				if sp.Duration <= 0 {
					t.Errorf("%q duration = %v, want > 0", name, sp.Duration)
				}
				if sp.Start.Before(root.Start) {
					t.Errorf("%q starts before its parent", name)
				}
			}
			// The ring records spans at End: both phases complete before the
			// root, so the root span is the last record.
			if recs[len(recs)-1].Name != "solve" {
				t.Errorf("last recorded span = %q, want the solve root", recs[len(recs)-1].Name)
			}
			ci, ei := -1, -1
			for i, r := range recs {
				switch r.Name {
				case "classify":
					ci = i
				case tc.evalSpan:
					ei = i
				}
			}
			if ci > ei {
				t.Errorf("classify recorded after %s", tc.evalSpan)
			}
		})
	}
}

// TestSpanTreeDegradedSolve: a budget-cutoff coNP solve records the
// degrade/sample span as a child of the root, after the cut-off eval span.
func TestSpanTreeDegradedSolve(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	ctx := obs.WithTracer(context.Background(), tr)
	v, err := SolveCtx(ctx, cq.Q0(), oddRingDB(21), Options{Budget: 60, DegradeSamples: 10, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome == OutcomeCertain {
		t.Fatalf("budget-60 solve over a 21-ring cannot conclude certain: %+v", v)
	}
	recs := tr.Snapshot()
	root := findSpan(recs, "solve")
	eval := findSpan(recs, "eval/falsifying-search")
	sample := findSpan(recs, "degrade/sample")
	if root == nil || eval == nil || sample == nil {
		t.Fatalf("missing spans in\n%s", obs.FormatTree(recs))
	}
	if sample.ParentID != root.ID {
		t.Errorf("degrade/sample parent = %d, want solve root %d", sample.ParentID, root.ID)
	}
	if sample.Start.Before(eval.Start) {
		t.Error("sampling must start after the exact search")
	}
	if attr(sample, "samples") == "" {
		t.Error("degrade/sample span must carry the sample count")
	}
}

// TestCompiledPlanSpanTree: the compiled-plan path records the same tree
// minus the classify span (paid at compile time), with a plan=compiled
// attribute on the root.
func TestCompiledPlanSpanTree(t *testing.T) {
	q := cq.MustParseQuery("R(x | y)")
	p, err := CompilePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TracerOptions{})
	ctx := obs.WithTracer(context.Background(), tr)
	if _, err := p.SolveCtx(ctx, db.MustParse("R(a | b), R(a | c)"), Options{}); err != nil {
		t.Fatal(err)
	}
	recs := tr.Snapshot()
	root := findSpan(recs, "solve")
	if root == nil || attr(root, "plan") != "compiled" {
		t.Fatalf("compiled root span missing plan attribute:\n%s", obs.FormatTree(recs))
	}
	if findSpan(recs, "classify") != nil {
		t.Error("compiled path must not re-classify")
	}
	if sp := findSpan(recs, "eval/fo-rewriting"); sp == nil || sp.ParentID != root.ID {
		t.Errorf("eval span missing or mis-parented:\n%s", obs.FormatTree(recs))
	}
}

// TestUntracedSolveRecordsNothing: without a tracer on the context, a solve
// records no spans anywhere — a tracer that exists but is not attached to
// the solve's context stays empty.
func TestUntracedSolveRecordsNothing(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	_ = obs.WithTracer(context.Background(), tr) // attached to a context we don't solve on
	v, err := SolveCtx(context.Background(), cq.MustParseQuery("R(x | y)"), db.MustParse("R(a | b)"), Options{})
	if err != nil || v.Outcome == OutcomeUnknown {
		t.Fatalf("solve failed: %v %+v", err, v)
	}
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("unattached tracer recorded %d spans", len(got))
	}
}

// TestDisabledTracingAddsNoAllocations locks the acceptance criterion that
// the tracing calls on the solve hot path are free when no tracer rides the
// context: the exact call shape SolveCtx makes per solve — root span, phase
// spans, attributes, ends — performs zero allocations.
func TestDisabledTracingAddsNoAllocations(t *testing.T) {
	base := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx, root := obs.StartSpan(base, "solve")
		_, csp := obs.StartSpan(ctx, "classify")
		csp.End()
		ectx, esp := obs.StartSpan(ctx, "eval/fo-rewriting")
		esp.SetInt("steps", 17)
		esp.End()
		_, dsp := obs.StartSpan(ectx, "degrade/sample")
		dsp.End()
		root.SetAttr("class", "fo")
		root.SetAttr("method", "fo-rewriting")
		root.SetAttr("outcome", "certain")
		root.SetInt("steps", 17)
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per solve, want 0", allocs)
	}
}
