package solver

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
)

// shardCountsUnderTest are the shard caps every differential test sweeps:
// no sharding benefit (1), minimal (2), the host's parallelism, and more
// shards than any instance has components.
func shardCountsUnderTest() []int {
	return []int{1, 2, runtime.NumCPU(), 0, 1 << 10}
}

// TestShardedMatchesMonolithic: for every dispatched method, the sharded
// solve returns a byte-identical verdict to the monolithic SolveCtx at
// every shard count. This is the tentpole differential suite: sharding must
// change scheduling, never answers.
func TestShardedMatchesMonolithic(t *testing.T) {
	ctx := context.Background()
	for _, tc := range differentialCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for di, d := range tc.dbs {
				mono, err := SolveCtx(ctx, tc.q, d, Options{})
				if err != nil {
					t.Fatalf("db %d: monolithic: %v", di, err)
				}
				want := verdictFingerprint(t, mono)
				for _, n := range shardCountsUnderTest() {
					sharded, err := Solve(ctx, tc.q, d, WithShards(n))
					if err != nil {
						t.Fatalf("db %d shards %d: %v", di, n, err)
					}
					if got := verdictFingerprint(t, sharded); got != want {
						t.Errorf("db %d shards %d:\n got %s\nwant %s", di, n, got, want)
					}
				}
			}
		})
	}
}

// TestShardedDisconnectedQuery exercises the conjunction across query
// components: certain ∧ certain, certain ∧ not-certain, and the empty
// component (a relation with no facts at all).
func TestShardedDisconnectedQuery(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParseQuery("R(x | y), S(y | z), U(u | v)")
	cases := []struct {
		name string
		d    *db.DB
	}{
		{"both-certain", db.MustParse(`R(a | b) S(b | c) U(k | w)`)},
		{"second-uncertain", db.MustParse(`R(a | b) S(b | c) U(k | w) U(k | w2)`)},
		{"first-uncertain", db.MustParse(`R(a | b) R(a | b2) S(b | c) U(k | w)`)},
		{"empty-component", db.MustParse(`R(a | b) S(b | c)`)},
		{"many-chains", db.MustParse(`
			R(a | b) S(b | c)
			R(a2 | b2) S(b2 | c2)
			R(a3 | b3) S(b3 | c3)
			U(k | w) U(k2 | w2)
		`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mono, err := SolveCtx(ctx, q, tc.d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := verdictFingerprint(t, mono)
			for _, n := range shardCountsUnderTest() {
				sharded, err := Solve(ctx, q, tc.d, WithShards(n))
				if err != nil {
					t.Fatalf("shards %d: %v", n, err)
				}
				if got := verdictFingerprint(t, sharded); got != want {
					t.Errorf("shards %d:\n got %s\nwant %s", n, got, want)
				}
			}
		})
	}
}

// shuffled rebuilds d with its facts in a random order. Shuffling never
// moves a fact between co-occurrence components, so it is exactly the
// component-preserving permutation the sharding invariant must absorb.
func shuffled(t *testing.T, d *db.DB, r *rand.Rand) *db.DB {
	t.Helper()
	facts := append([]db.Fact(nil), d.Facts()...)
	r.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
	out := db.New()
	for _, f := range facts {
		if err := out.Add(f); err != nil {
			t.Fatalf("re-add %v: %v", f, err)
		}
	}
	return out
}

// TestShardedShuffleProperty is the satellite property test: random
// component-preserving fact shuffles and arbitrary shard counts never
// change a verdict. (The count/probability halves live in internal/prob.)
func TestShardedShuffleProperty(t *testing.T) {
	ctx := context.Background()
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.MustParseQuery("R(x | y), S(y | z), U(u | v)"),
		cq.ACk(3),
		cq.Q0(),
	}
	for qi, q := range queries {
		for seed := int64(0); seed < 4; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 4, Domain: 3}, 100+seed)
			mono, err := SolveCtx(ctx, q, d, Options{})
			if err != nil {
				t.Fatalf("q%d seed %d: %v", qi, seed, err)
			}
			r := rand.New(rand.NewSource(seed * 7717))
			for trial := 0; trial < 3; trial++ {
				perm := shuffled(t, d, r)
				for _, n := range []int{1, 2, runtime.NumCPU(), 1 << 10} {
					v, err := Solve(ctx, q, perm, WithShards(n))
					if err != nil {
						t.Fatalf("q%d seed %d trial %d shards %d: %v", qi, seed, trial, n, err)
					}
					if v.Outcome != mono.Outcome || v.Result.Certain != mono.Result.Certain {
						t.Errorf("q%d seed %d trial %d shards %d: outcome %v/%v, want %v/%v",
							qi, seed, trial, n, v.Outcome, v.Result.Certain, mono.Outcome, mono.Result.Certain)
					}
				}
			}
		}
	}
}

// TestShardedBudgetSplit: a finite budget is split across shards and a
// cutoff degrades to OutcomeUnknown, never to an error or a wrong answer.
func TestShardedBudgetSplit(t *testing.T) {
	ctx := context.Background()
	q := cq.ACk(3)
	d := gen.CycleDB(gen.CycleConfig{K: 3, Components: 8, Width: 2})
	v, err := Solve(ctx, q, d, WithShards(4), WithBudget(1), WithDegradeSamples(-1))
	if err != nil {
		t.Fatalf("budgeted sharded solve: %v", err)
	}
	if v.Outcome != OutcomeUnknown {
		t.Fatalf("outcome = %v, want Unknown under a 1-step budget", v.Outcome)
	}
	if v.Err == nil || v.Evidence == nil {
		t.Fatalf("unknown verdict missing cutoff cause/evidence: err=%v evidence=%v", v.Err, v.Evidence)
	}
	// And with room to breathe the same call is conclusive and correct.
	full, err := Solve(ctx, q, d, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	mono, err := SolveCtx(ctx, q, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Outcome != mono.Outcome {
		t.Fatalf("unbudgeted sharded outcome %v, monolithic %v", full.Outcome, mono.Outcome)
	}
}

// TestSolveOptionDispatch pins the Solve facade's routing: zero options is
// SolveCtx, WithPlanCache goes through the source, WithShards(1) falls back
// to the monolithic plan path.
func TestSolveOptionDispatch(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse(`R(a | b) S(b | c)`)
	want, err := SolveCtx(ctx, q, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := &countingPlans{}
	for _, opts := range [][]Option{
		nil,
		{WithShards(1)},
		{WithShards(-1)},
		{WithPlanCache(src)},
		{WithPlanCache(src), WithShards(2)},
		{WithBudget(1 << 20), WithDeadline(time.Minute)},
	} {
		v, err := Solve(ctx, q, d, opts...)
		if err != nil {
			t.Fatalf("opts %d: %v", len(opts), err)
		}
		if verdictFingerprint(t, v) != verdictFingerprint(t, want) {
			t.Errorf("opts %v: verdict differs from SolveCtx", opts)
		}
	}
	if src.calls == 0 {
		t.Error("WithPlanCache source was never consulted")
	}
}

type countingPlans struct {
	mu    sync.Mutex
	calls int
}

func (c *countingPlans) Get(ctx context.Context, q cq.Query) (*Plan, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return CompilePlan(q)
}

// TestSolveBatch: batch results match individual solves item-for-item, the
// observer sees every item exactly once before the call returns, and plan
// compilation is amortized across items sharing a canonical query.
func TestSolveBatch(t *testing.T) {
	ctx := context.Background()
	q1 := cq.MustParseQuery("R(x | y), S(y | z)")
	q2 := cq.ACk(3)
	items := []BatchItem{
		{Query: q1, DB: db.MustParse(`R(a | b) S(b | c)`)},
		{Query: q1, DB: db.MustParse(`R(a | b) R(a | b2) S(b | c)`)},
		{Query: q2, DB: gen.CycleDB(gen.CycleConfig{K: 3, Components: 3, Width: 2, EncodeAll: true})},
		{Query: q1, DB: db.MustParse(`R(a | b) S(b | c) S(b | c2)`)},
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	src := &countingPlans{}
	results := SolveBatch(ctx, items, WithPlanCache(src), WithObserver(func(r BatchResult) {
		mu.Lock()
		seen[r.Index]++
		mu.Unlock()
	}))
	if len(results) != len(items) {
		t.Fatalf("got %d results, want %d", len(results), len(items))
	}
	for i, it := range items {
		if results[i].Index != i {
			t.Errorf("results[%d].Index = %d", i, results[i].Index)
		}
		if results[i].Err != nil {
			t.Fatalf("item %d: %v", i, results[i].Err)
		}
		want, err := SolveCtx(ctx, it.Query, it.DB, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if verdictFingerprint(t, results[i].Verdict) != verdictFingerprint(t, want) {
			t.Errorf("item %d: batch verdict differs from individual solve", i)
		}
		if seen[i] != 1 {
			t.Errorf("observer saw item %d %d times, want 1", i, seen[i])
		}
	}
	// Two distinct canonical queries → two source lookups, not four: the
	// batch memo deduplicates repeats before hitting the source.
	if src.calls != 2 {
		t.Errorf("plan source consulted %d times, want 2 (one per distinct query)", src.calls)
	}
	// Sharded batches agree too.
	shardedResults := SolveBatch(ctx, items, WithShards(2))
	for i := range items {
		if shardedResults[i].Err != nil {
			t.Fatalf("sharded item %d: %v", i, shardedResults[i].Err)
		}
		if verdictFingerprint(t, shardedResults[i].Verdict) != verdictFingerprint(t, results[i].Verdict) {
			t.Errorf("item %d: sharded batch verdict differs", i)
		}
	}
}

func TestSolveBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	results := SolveBatch(ctx, []BatchItem{{Query: q, DB: db.MustParse(`R(a | b) S(b | c)`)}})
	if results[0].Err == nil {
		t.Fatal("cancelled batch reported success")
	}
}

// TestWorkerBudgetShared is the satellite regression test: the shard pool,
// the batch fan-out, and CertainACkParallel draw extra goroutines from ONE
// gate, so nesting all three cannot push the peak goroutine count past
// baseline + limit (+ the sampler itself).
func TestWorkerBudgetShared(t *testing.T) {
	const limit = 3
	restore := govern.SetWorkerLimit(limit)
	defer restore()

	q := cq.ACk(3)
	items := make([]BatchItem, 6)
	for i := range items {
		items[i] = BatchItem{Query: q, DB: gen.CycleDB(gen.CycleConfig{K: 3, Components: 6, Width: 2, EncodeAll: i%2 == 0})}
	}

	baseline := runtime.NumGoroutine()
	stop := make(chan struct{})
	peak := make(chan int, 1)
	go func() {
		max := 0
		for {
			select {
			case <-stop:
				peak <- max
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > max {
				max = n
			}
		}
	}()

	// Nested fan-out: batch items × shard joins × ACk component marking.
	results := SolveBatch(context.Background(), items, WithShards(4))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	// Plus the standalone parallel AC(k) API on the same gate.
	if _, err := CertainACkParallel(q, mustShape(t, q), items[0].DB, 8); err != nil {
		t.Fatal(err)
	}
	close(stop)
	got := <-peak
	// baseline + the sampler + at most `limit` gate workers. Anything above
	// means a fan-out layer is spawning outside the shared budget.
	if allowed := baseline + 1 + limit; got > allowed {
		t.Fatalf("peak goroutines %d > allowed %d (baseline %d + sampler + %d gate slots)",
			got, allowed, baseline, limit)
	}
}

func mustShape(t *testing.T, q cq.Query) *core.CycleShape {
	t.Helper()
	p, err := CompilePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.cls.Shape == nil {
		t.Fatal("query has no cycle shape")
	}
	return p.cls.Shape
}
