package solver

import (
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/intern"
)

// internedOn selects the interned execution plane for compiled FO programs.
// On by default; SetInterned(false) falls back to the string-indexed
// recursion. Both planes make the same block choices in the same order and
// charge the same governor steps, so the verdict, the error, and the budget
// point of failure are identical (locked by the parity tests).
var internedOn atomic.Bool

func init() { internedOn.Store(true) }

// SetInterned selects (true, the default) or deselects the interned plane
// for this package's compiled FO programs.
func SetInterned(on bool) { internedOn.Store(on) }

// InternedEnabled reports whether the interned plane is selected.
func InternedEnabled() bool { return internedOn.Load() }

// SetInternedDataPlane is the master switch for the whole interned data
// plane: it flips the engine, fo, and solver knobs together. Differential
// tests use it to run every method on both planes against the same inputs.
func SetInternedDataPlane(on bool) {
	engine.SetInterned(on)
	fo.SetInterned(on)
	internedOn.Store(on)
}

// InternedDataPlaneEnabled reports whether all three package knobs select
// the interned plane.
func InternedDataPlaneEnabled() bool {
	return engine.InternedEnabled() && fo.InternedEnabled() && internedOn.Load()
}

// evalSafeRewriting evaluates the Theorem 6 safe rewriting, preferring a
// precompiled closure tree (which itself runs interned unless fo.SetInterned
// deselects it). Without one it compiles per call, falling back to the
// interpreted fo.Eval only if compilation fails — so the hot path never
// walks the AST.
func evalSafeRewriting(phi fo.Formula, prog *fo.Compiled, d *db.DB) (bool, error) {
	if prog == nil {
		var err error
		if prog, err = fo.Compile(phi); err != nil {
			return fo.Eval(phi, d)
		}
	}
	return prog.Eval(d)
}

// Argument kinds of the interned FO schedule. At each level, a residual
// atom's argument is a constant of the runtime query (foConst), a variable
// grounded by an earlier level's elimination (foBound), or a variable this
// level grounds (foBind). The classification is static: the depth-L residual
// always has the same shape, so bound-ness is a function of the compile-time
// elimination order alone.
const (
	foConst uint8 = iota
	foBound
	foBind
)

// foArg is one compiled argument: idx is a constant ordinal (foConst) or an
// environment slot (foBound / foBind).
type foArg struct {
	kind uint8
	idx  uint16
}

// constRef locates a constant in the runtime query. A program may be applied
// to any query with the compiled shape, and shapes mask constants — so the
// ids to probe with must come from the query actually being solved, not the
// one compiled against.
type constRef struct{ atom, pos int }

// foStep is one level of the interned schedule: the relation signature to
// resolve, the lowered arguments, and whether the block key is fully
// determined at level entry (constants or slots bound by earlier levels),
// in which case a single hash probe replaces the all-blocks scan — exactly
// when the string path's candidateBlocks narrows to one BlockView.
type foStep struct {
	rel      string
	arity    int
	keyLen   int
	args     []foArg
	keyReady bool
}

// compileStep lowers the elimination of original atom ai. slots carries the
// variables grounded by previously eliminated atoms; the snapshot of the
// slot counter at entry distinguishes them from variables first bound within
// this very atom, which are NOT determined at level entry (a key position
// holding one forces the all-blocks scan, matching the string path, where
// such a position is still a variable in the residual atom).
func (p *FOProgram) compileStep(q cq.Query, ai int, slots map[string]uint16) {
	a := q.Atoms[ai]
	entryN := uint16(p.nslots)
	st := foStep{rel: a.Rel, arity: len(a.Args), keyLen: a.KeyLen, args: make([]foArg, len(a.Args)), keyReady: true}
	for j, t := range a.Args {
		if t.IsConst {
			st.args[j] = foArg{kind: foConst, idx: uint16(len(p.constRefs))}
			p.constRefs = append(p.constRefs, constRef{atom: ai, pos: j})
			continue
		}
		if s, ok := slots[t.Value]; ok {
			st.args[j] = foArg{kind: foBound, idx: s}
			continue
		}
		s := uint16(p.nslots)
		p.nslots++
		slots[t.Value] = s
		st.args[j] = foArg{kind: foBind, idx: s}
	}
	for j := 0; j < st.keyLen; j++ {
		ag := st.args[j]
		if ag.kind == foConst || (ag.kind == foBound && ag.idx < entryN) {
			continue
		}
		st.keyReady = false
		break
	}
	if st.keyReady && st.keyLen > p.maxKey {
		p.maxKey = st.keyLen
	}
	p.sched = append(p.sched, st)
}

// foScratch is the pooled runtime of the interned recursion: the slot
// environment, the key probe buffer, the resolved constant ids, and the
// resolved per-level relations. A warm run allocates nothing.
type foScratch struct {
	env    []uint32
	key    []uint32
	consts []uint32
	rels   []*db.IRel
}

var foScratchPool = sync.Pool{New: func() any { return new(foScratch) }}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

// certainInterned is the interned CertainCtx body: charge the entry step
// (cancellation surfaces before any database work, as in the string path),
// then resolve and recurse.
func (p *FOProgram) certainInterned(g *govern.Governor, q cq.Query, d *db.DB) (bool, error) {
	if err := g.Step(); err != nil {
		return false, err
	}
	return p.steppedInterned(g, q, d)
}

// steppedInterned runs the interned recursion after the entry step has been
// charged. Constants resolve to their ids — or intern.None when absent from
// the database, which matches no fact and no block, exactly as an unknown
// string matches nothing. Relations resolve to their columnar storage, or
// nil on absence or signature mismatch: the string path enumerates such a
// relation's blocks only to fail unification on every first fact, so both
// planes return false there without recursing.
func (p *FOProgram) steppedInterned(g *govern.Governor, q cq.Query, d *db.DB) (bool, error) {
	in := d.Interned()
	sc := foScratchPool.Get().(*foScratch)
	defer foScratchPool.Put(sc)

	sc.consts = sc.consts[:0]
	for _, cr := range p.constRefs {
		id, ok := in.Syms.Lookup(q.Atoms[cr.atom].Args[cr.pos].Value)
		if !ok {
			id = intern.None
		}
		sc.consts = append(sc.consts, id)
	}
	sc.rels = sc.rels[:0]
	for i := range p.sched {
		st := &p.sched[i]
		r := in.Rel(st.rel)
		if r != nil && (r.Arity != st.arity || r.KeyLen != st.keyLen) {
			r = nil
		}
		sc.rels = append(sc.rels, r)
	}
	sc.env = growU32(sc.env, p.nslots)
	sc.key = growU32(sc.key, p.maxKey)
	return p.istepped(g, sc, 0)
}

// irun charges one governor step per search node entered — the exact charge
// sites of the string path's run — then descends.
func (p *FOProgram) irun(g *govern.Governor, sc *foScratch, level int) (bool, error) {
	if err := g.Step(); err != nil {
		return false, err
	}
	return p.istepped(g, sc, level)
}

func (p *FOProgram) istepped(g *govern.Governor, sc *foScratch, level int) (bool, error) {
	if level == len(p.sched) {
		return true, nil
	}
	st := &p.sched[level]
	r := sc.rels[level]
	if r == nil {
		return false, nil
	}
	if st.keyReady {
		key := sc.key[:st.keyLen]
		for j := 0; j < st.keyLen; j++ {
			ag := st.args[j]
			if ag.kind == foConst {
				key[j] = sc.consts[ag.idx]
			} else {
				key[j] = sc.env[ag.idx]
			}
		}
		span, ok := r.BlockOf(key)
		if !ok {
			return false, nil
		}
		return p.tryBlock(g, sc, st, r, span, level)
	}
	for b, nb := 0, r.NumBlocks(); b < nb; b++ {
		ok, err := p.tryBlock(g, sc, st, r, r.BlockSpan(b), level)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// tryBlock checks whether EVERY fact of the block unifies with the level's
// atom and makes the remainder certain — the ∀-within-block of Theorem 1's
// rewriting. Bind slots are written left-to-right before any same-atom read,
// and are freely overwritten across facts and branches: every level reads
// only slots bound at shallower levels or within its own atom, so no
// unbinding is ever needed.
func (p *FOProgram) tryBlock(g *govern.Governor, sc *foScratch, st *foStep, r *db.IRel, span []uint32, level int) (bool, error) {
	for _, fi := range span {
		for j := range st.args {
			ag := st.args[j]
			v := r.Arg(fi, j)
			switch ag.kind {
			case foConst:
				if sc.consts[ag.idx] != v {
					return false, nil
				}
			case foBound:
				if sc.env[ag.idx] != v {
					return false, nil
				}
			default: // foBind
				sc.env[ag.idx] = v
			}
		}
		sub, err := p.irun(g, sc, level+1)
		if err != nil {
			return false, err
		}
		if !sub {
			return false, nil
		}
	}
	return true, nil
}
