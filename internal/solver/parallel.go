package solver

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
)

// CertainACkParallel is CertainACk with the per-strong-component decisions
// fanned out across workers goroutines (0 means GOMAXPROCS). Components
// are independent in the Theorem 4 algorithm, so the result is identical
// to the sequential version; the fan-out pays off on databases with many
// components.
func CertainACkParallel(q cq.Query, shape *core.CycleShape, d *db.DB, workers int) (bool, error) {
	if shape == nil || shape.SkAtom < 0 {
		return false, fmt.Errorf("solver: CertainACkParallel requires an AC(k) shape")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d = engine.Purify(q, d)
	if d.Len() == 0 {
		return false, nil
	}
	cg, comps, err := buildCycleGraph(q, shape, d, true)
	if err != nil {
		return false, err
	}
	inC := cg.markedCycles(q, shape, d)

	jobs := make(chan []int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	certain := false
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for comp := range jobs {
				if !markableComponent(cg, comp, inC) {
					mu.Lock()
					certain = true
					mu.Unlock()
				}
			}
		}()
	}
	for _, comp := range comps {
		jobs <- comp
	}
	close(jobs)
	wg.Wait()
	return certain, nil
}
