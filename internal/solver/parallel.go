package solver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
)

// CertainACkParallel is CertainACk with the per-strong-component decisions
// fanned out across workers goroutines (0 means GOMAXPROCS). Components
// are independent in the Theorem 4 algorithm, so the result is identical
// to the sequential version; the fan-out pays off on databases with many
// components.
func CertainACkParallel(q cq.Query, shape *core.CycleShape, d *db.DB, workers int) (bool, error) {
	return CertainACkParallelCtx(context.Background(), q, shape, d, workers)
}

// CertainACkParallelCtx is CertainACkParallel with cooperative
// cancellation. One component admitting no marking already decides the
// instance certain, so the first worker to find one cancels the rest:
// remaining components are skipped instead of drained. The caller's
// context cancels the fan-out the same way; its error is surfaced.
func CertainACkParallelCtx(ctx context.Context, q cq.Query, shape *core.CycleShape, d *db.DB, workers int) (bool, error) {
	if shape == nil || shape.SkAtom < 0 {
		return false, fmt.Errorf("solver: CertainACkParallel requires an AC(k) shape")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d, err := engine.PurifyCtx(ctx, q, d)
	if err != nil {
		return false, err
	}
	if d.Len() == 0 {
		return false, nil
	}
	cg, comps, err := buildCycleGraph(q, shape, d, true)
	if err != nil {
		return false, err
	}
	inC := cg.markedCycles(q, shape, d)
	// Never spin up more workers than there are components to decide: the
	// extras would only park on the jobs channel and inflate goroutine churn
	// on small instances.
	if workers > len(comps) {
		workers = len(comps)
	}

	// done closes when a decisive component is found or the caller's
	// context trips; both feeder and workers select on it, so no goroutine
	// blocks on the unbuffered channel after the early exit.
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan []int)
	var wg sync.WaitGroup
	var certain atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-fanCtx.Done():
					return
				case comp, ok := <-jobs:
					if !ok {
						return
					}
					if !markableComponent(cg, comp, inC) {
						certain.Store(true)
						cancel()
						return
					}
				}
			}
		}()
	}
feed:
	for _, comp := range comps {
		select {
		case jobs <- comp:
		case <-fanCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if certain.Load() {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return false, nil
}
