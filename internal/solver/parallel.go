package solver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/govern"
)

// CertainACkParallel is CertainACk with the per-strong-component decisions
// fanned out across workers goroutines (0 means GOMAXPROCS). Components
// are independent in the Theorem 4 algorithm, so the result is identical
// to the sequential version; the fan-out pays off on databases with many
// components.
func CertainACkParallel(q cq.Query, shape *core.CycleShape, d *db.DB, workers int) (bool, error) {
	return CertainACkParallelCtx(context.Background(), q, shape, d, workers)
}

// CertainACkParallelCtx is CertainACkParallel with cooperative
// cancellation. One component admitting no marking already decides the
// instance certain, so the first worker to find one cancels the rest:
// remaining components are skipped instead of drained. The caller's
// context cancels the fan-out the same way; its error is surfaced.
func CertainACkParallelCtx(ctx context.Context, q cq.Query, shape *core.CycleShape, d *db.DB, workers int) (bool, error) {
	if shape == nil || shape.SkAtom < 0 {
		return false, fmt.Errorf("solver: CertainACkParallel requires an AC(k) shape")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d, err := engine.PurifyCtx(ctx, q, d)
	if err != nil {
		return false, err
	}
	if d.Len() == 0 {
		return false, nil
	}
	cg, comps, err := buildCycleGraph(q, shape, d, true)
	if err != nil {
		return false, err
	}
	inC := cg.markedCycles(q, shape, d)
	// Never spin up more workers than there are components to decide: the
	// extras would only contend on the index counter and inflate goroutine
	// churn on small instances.
	if workers > len(comps) {
		workers = len(comps)
	}

	// fanCtx trips when a decisive component is found or the caller's
	// context does; workers claiming the next index check it first, so the
	// early exit skips the remaining components instead of draining them.
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var certain atomic.Bool
	var next atomic.Int64
	work := func() {
		for fanCtx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= len(comps) {
				return
			}
			if !markableComponent(cg, comps[i], inC) {
				certain.Store(true)
				cancel()
				return
			}
		}
	}
	// The fan-out draws its extra goroutines from the process-wide worker
	// gate shared with the shard pool: when this call runs inside a shard
	// solve that already saturated the gate, no goroutines are spawned and
	// the components are decided inline on the caller's goroutine — the two
	// layers share one GOMAXPROCS-derived budget instead of multiplying.
	gate := govern.Workers()
	var wg sync.WaitGroup
	for spawned := 0; spawned < workers-1; spawned++ {
		if !gate.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer gate.Release()
			work()
		}()
	}
	work()
	wg.Wait()
	if certain.Load() {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return false, nil
}
