package solver

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

// verdictFingerprint renders everything observable about a verdict as one
// string, so the differential tests below can demand byte-identical results
// between the per-call path and the compiled-plan path.
func verdictFingerprint(t *testing.T, v Verdict) string {
	t.Helper()
	res, err := json.Marshal(v.Result)
	if err != nil {
		t.Fatalf("marshal Result: %v", err)
	}
	ev, err := json.Marshal(v.Evidence)
	if err != nil {
		t.Fatalf("marshal Evidence: %v", err)
	}
	errStr := "<nil>"
	if v.Err != nil {
		errStr = v.Err.Error()
	}
	return fmt.Sprintf("outcome=%d result=%s err=%q evidence=%s", v.Outcome, res, errStr, ev)
}

// differentialCases covers every dispatched method: FO rewriting, the safe
// Theorem 6 rewriting, Theorem 3 terminal cycles, AC(k), C(k), the
// falsifying search on coNP queries, and the projection-simplified open
// case.
func differentialCases(t *testing.T) []struct {
	name string
	q    cq.Query
	dbs  []*db.DB
} {
	t.Helper()
	randoms := func(q cq.Query, cfg gen.Config, seeds ...int64) []*db.DB {
		out := make([]*db.DB, len(seeds))
		for i, s := range seeds {
			out[i] = gen.RandomDB(q, cfg, s)
		}
		return out
	}
	foQ := cq.MustParseQuery("R(x | y), S(y | z)")
	safeQ := cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	termQ := gen.TerminalPairsQuery(2, true)
	ackQ := cq.ACk(3)
	ckQ := cq.Ck(2)
	falsQ := cq.Q0()
	openQ := gen.OpenCaseQuery()
	return []struct {
		name string
		q    cq.Query
		dbs  []*db.DB
	}{
		{"fo", foQ, randoms(foQ, gen.Config{Embeddings: 6, Noise: 4, Domain: 4}, 1, 2, 3)},
		{"safe-rewriting", safeQ, randoms(safeQ, gen.Config{Embeddings: 4, Noise: 3, Domain: 3}, 4, 5)},
		{"terminal", termQ, randoms(termQ, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, 6, 7)},
		{"ack", ackQ, []*db.DB{
			gen.CycleDB(gen.CycleConfig{K: 3, Components: 4, Width: 2, EncodeAll: true}),
			gen.CycleDB(gen.CycleConfig{K: 3, Components: 4, Width: 2}),
		}},
		{"ck", ckQ, randoms(ckQ, gen.Config{Embeddings: 3, Noise: 2, Domain: 3}, 8, 9)},
		{"falsifying", falsQ, randoms(falsQ, gen.Config{Embeddings: 4, Noise: 3, Domain: 3}, 10, 11, 12)},
		{"simplified-open-case", openQ, randoms(openQ, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, 13, 14)},
	}
}

// TestPlanMatchesSolveCtx: for every method, executing the compiled plan
// yields a byte-identical Verdict to the per-call SolveCtx path.
func TestPlanMatchesSolveCtx(t *testing.T) {
	for _, tc := range differentialCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			p, err := CompilePlan(tc.q)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			for i, d := range tc.dbs {
				want, err := SolveCtx(context.Background(), tc.q, d, Options{})
				if err != nil {
					t.Fatalf("db %d: SolveCtx: %v", i, err)
				}
				got, err := p.SolveCtx(context.Background(), d, Options{})
				if err != nil {
					t.Fatalf("db %d: Plan.SolveCtx: %v", i, err)
				}
				w, g := verdictFingerprint(t, want), verdictFingerprint(t, got)
				if w != g {
					t.Fatalf("db %d: verdicts differ\n solve: %s\n plan:  %s", i, w, g)
				}
			}
		})
	}
}

// TestPlanMatchesSolve: the ungoverned Result path agrees byte for byte.
func TestPlanMatchesSolve(t *testing.T) {
	for _, tc := range differentialCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			p, err := CompilePlan(tc.q)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			if p.Class != p.Classification().Class {
				t.Fatalf("Class %v disagrees with Classification %v", p.Class, p.Classification().Class)
			}
			for i, d := range tc.dbs {
				want, err := SolveResult(tc.q, d)
				if err != nil {
					t.Fatalf("db %d: Solve: %v", i, err)
				}
				got, err := p.Solve(d)
				if err != nil {
					t.Fatalf("db %d: Plan.Solve: %v", i, err)
				}
				w, _ := json.Marshal(want)
				g, _ := json.Marshal(got)
				if string(w) != string(g) {
					t.Fatalf("db %d: results differ\n solve: %s\n plan:  %s", i, w, g)
				}
				if want.Method != p.Method {
					t.Fatalf("db %d: Solve used %v, plan advertises %v", i, want.Method, p.Method)
				}
			}
		})
	}
}

// TestIndexedFOMatchesBaseline: the indexed+pooled+compiled FO path returns
// exactly what the seed implementation (per-call block derivation, lazy
// shape memo) returns, over random instances.
func TestIndexedFOMatchesBaseline(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.MustParseQuery("R(x | y), S(y, a | z)"),
		cq.MustParseQuery("R(x | y), S(y | z), T(z | w)"),
	}
	for qi, q := range queries {
		for seed := int64(0); seed < 8; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 5, Noise: 4, Domain: 3}, seed)
			want, errW := CertainFOBaseline(q, d)
			got, errG := CertainFO(q, d)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("q%d seed %d: error mismatch %v vs %v", qi, seed, errW, errG)
			}
			if want != got {
				t.Fatalf("q%d seed %d: baseline %v, indexed %v", qi, seed, want, got)
			}
		}
	}
}

// TestCompileFORejectsCyclic: compilation fails exactly where the seed
// recursion failed.
func TestCompileFORejectsCyclic(t *testing.T) {
	if _, err := CompileFO(cq.Q0()); err == nil {
		t.Fatal("CompileFO must reject a cyclic attack graph")
	}
	if _, err := CompilePlan(cq.Query{}); err == nil {
		t.Log("empty query compiles (matches Classify's treatment)")
	}
}
