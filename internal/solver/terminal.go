package solver

import (
	"context"
	"fmt"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/jointree"
)

// CertainTerminal decides db ∈ CERTAINTY(q) in polynomial time for acyclic
// self-join-free queries all of whose attack cycles are weak and terminal,
// implementing the proof of Theorem 3:
//
//   - Induction step: while an unattacked atom F exists, the query is
//     certain iff for some constant vector ā over key(F) (equivalently:
//     for some block of F's relation; Corollary 8.11 of [Wijsen, TODS
//     2012]), after purification every fact of that block unifies with F
//     and makes the instantiated remainder certain (Lemma 8). Lemma 5
//     guarantees the remainder's attack cycles stay weak and terminal.
//   - Base case: every atom lies on a weak terminal 2-cycle; by Lemma 6
//     the attack graph is a disjoint union of 2-cycles {Fi, Gi}. The facts
//     of each cycle's relations are partitioned by the values of the
//     variables shared with other cycles (contained in both keys by
//     Lemma 7); each partition is decided with the two-atom weak-cycle
//     solver, and by Sublemma 5 the query is certain iff the union of the
//     certain partitions satisfies q.
func CertainTerminal(q cq.Query, d *db.DB) (bool, error) {
	return CertainTerminalCtx(context.Background(), q, d)
}

// CertainTerminalCtx is CertainTerminal with cooperative cancellation: the
// governor bounds the recursive induction steps as well as the embedded
// purification passes.
func CertainTerminalCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	if err := govern.From(ctx).Step(); err != nil {
		return false, err
	}
	if q.IsEmpty() {
		return true, nil
	}
	d, err := engine.PurifyCtx(ctx, q, d)
	if err != nil {
		return false, err
	}
	if d.Len() == 0 {
		return false, nil
	}
	g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
	if err != nil {
		return false, err
	}
	if !g.AllCyclesWeakAndTerminal() {
		return false, fmt.Errorf("solver: CertainTerminal requires all attack cycles weak and terminal: %s", q)
	}
	if un := g.Unattacked(); len(un) > 0 {
		return terminalStep(ctx, q, un[0], d)
	}
	return terminalBase(ctx, q, g, d)
}

// terminalStep handles the induction step for unattacked atom q.Atoms[fi].
func terminalStep(ctx context.Context, q cq.Query, fi int, d *db.DB) (bool, error) {
	F := q.Atoms[fi]
	rest := q.Without(fi)
	for _, block := range candidateBlocks(d, F) {
		// The block's key values must unify with F's key pattern; then by
		// Lemma 8 every fact of the block must unify and leave a certain
		// remainder. (Facts of the block outside F's pattern make the block
		// unusable: a repair choosing such a fact has no F-image with this
		// key.)
		blockOK := true
		for _, A := range block {
			theta, ok := unifyAtomFact(F, A)
			if !ok {
				blockOK = false
				break
			}
			sub, err := CertainTerminalCtx(ctx, rest.Substitute(theta), d)
			if err != nil {
				return false, err
			}
			if !sub {
				blockOK = false
				break
			}
		}
		if blockOK {
			return true, nil
		}
	}
	return false, nil
}

// terminalBase handles the base case: the attack graph is a disjoint union
// of weak terminal 2-cycles and d is purified relative to q.
func terminalBase(ctx context.Context, q cq.Query, g *core.AttackGraph, d *db.DB) (bool, error) {
	cycles := g.TerminalWeakCycles()
	// Every atom must belong to exactly one cycle.
	inCycle := make(map[int]bool)
	for _, c := range cycles {
		inCycle[c.F] = true
		inCycle[c.G] = true
	}
	if len(inCycle) != q.Len() {
		return false, fmt.Errorf("solver: base case expects every atom on a 2-cycle: %s", q)
	}

	// Shared variables x̄_i: variables of cycle i occurring in other cycles.
	cycleVars := make([]cq.VarSet, len(cycles))
	for i, c := range cycles {
		cycleVars[i] = q.Atoms[c.F].Vars().Union(q.Atoms[c.G].Vars())
	}
	good := db.New() // ⋃ T db_i U: union of certain partitions

	for i, c := range cycles {
		shared := make(cq.VarSet)
		for j := range cycles {
			if j != i {
				shared.AddAll(cycleVars[i].Intersect(cycleVars[j]))
			}
		}
		sharedSeq := shared.Sorted()
		Fi, Gi := q.Atoms[c.F], q.Atoms[c.G]

		// Partition db_i (the facts of the cycle's relations) by the value
		// vector of the shared variables. Purification guarantees every
		// fact unifies with its atom, and Lemma 7 puts the shared
		// variables inside both keys, so the vector is well defined.
		partitions := make(map[string]*db.DB)
		addFact := func(atom cq.Atom, f db.Fact) error {
			theta, ok := unifyAtomFact(atom, f)
			if !ok {
				return fmt.Errorf("solver: purified fact %s does not match %s", f, atom)
			}
			key := make([]string, len(sharedSeq))
			for k, v := range sharedSeq {
				key[k] = theta[v]
			}
			pk := encodeVector(key)
			p, ok := partitions[pk]
			if !ok {
				p = db.New()
				partitions[pk] = p
			}
			return p.Add(f)
		}
		for _, f := range d.RelationFacts(Fi.Rel) {
			if err := addFact(Fi, f); err != nil {
				return false, err
			}
		}
		for _, f := range d.RelationFacts(Gi.Rel) {
			if err := addFact(Gi, f); err != nil {
				return false, err
			}
		}
		for _, p := range partitions {
			certain, err := certainTwoAtomWeak(Fi, Gi, p)
			if err != nil {
				return false, err
			}
			if !certain {
				continue
			}
			for _, f := range p.Facts() {
				if err := good.Add(f); err != nil {
					return false, err
				}
			}
		}
	}
	// Sublemma 5: db ∈ CERTAINTY(q) ⟺ ⋃ T db_i U ⊨ q.
	return engine.EvalCtx(ctx, q, good)
}
