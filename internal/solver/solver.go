package solver

import (
	"fmt"
	"math/big"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/fo"
)

// Method identifies the decision procedure used for a CERTAINTY(q) instance.
type Method int

const (
	// MethodFO is the first-order rewriting procedure (Theorem 1).
	MethodFO Method = iota
	// MethodTerminal is the Theorem 3 polynomial algorithm.
	MethodTerminal
	// MethodACk is the Theorem 4 graph-marking algorithm.
	MethodACk
	// MethodCk is the Corollary 1 algorithm.
	MethodCk
	// MethodFalsifying is the pruned exponential falsifying-repair search,
	// used for coNP-complete and open-classified queries.
	MethodFalsifying
	// MethodBruteForce is full repair enumeration (ground truth).
	MethodBruteForce
	// MethodSafeRewriting evaluates the Theorem 6 certain rewriting; used
	// for safe queries without a join tree (cyclic hypergraph).
	MethodSafeRewriting
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodFO:
		return "first-order rewriting (Theorem 1)"
	case MethodTerminal:
		return "terminal weak cycles (Theorem 3)"
	case MethodACk:
		return "AC(k) graph marking (Theorem 4)"
	case MethodCk:
		return "C(k) graph marking (Corollary 1)"
	case MethodFalsifying:
		return "falsifying-repair search"
	case MethodBruteForce:
		return "brute-force repair enumeration"
	case MethodSafeRewriting:
		return "safe-query rewriting (Theorem 6)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Result reports a CERTAINTY(q) decision together with how it was obtained.
type Result struct {
	Certain        bool                `json:"certain"`
	Method         Method              `json:"method"`
	Classification core.Classification `json:"classification"`
	// Simplified is non-nil when an equivalence-preserving rewrite moved
	// the instance to a more tractable class before solving; the
	// Classification field still reports the paper-faithful class of the
	// original query, and SimplifiedClass the class actually solved.
	Simplified      *Simplification `json:"simplified,omitempty"`
	SimplifiedClass core.Class      `json:"simplified_class"`
}

// SolveResult classifies q with the paper's effective method and dispatches
// to the matching decision procedure. Polynomial-time whenever the class
// guarantees it; before falling back to the exact exponential search on
// coNP-classified or open queries, it tries the projection simplification,
// which can move instances into a polynomial class (e.g. the §6.2
// open-case query becomes AC(2)).
//
// Deprecated-style convenience: this is the original ungoverned entry
// point, kept for callers that want a bare Result with no context. New code
// should call Solve(ctx, q, d, ...Option), which adds cancellation, limits,
// sharding, and plan reuse behind functional options.
func SolveResult(q cq.Query, d *db.DB) (Result, error) {
	cls, err := core.Classify(q)
	if err != nil {
		return Result{}, err
	}
	if !cls.Class.InP() {
		if q2, rewrite, rep := simplifyProjection(q); rep != nil {
			if cls2, err2 := core.Classify(q2); err2 == nil && cls2.Class.InP() {
				d2, err := rewrite(d)
				if err != nil {
					return Result{}, err
				}
				res, err := solveClassified(q2, d2, cls2)
				if err != nil {
					return Result{}, err
				}
				res.Classification = cls
				res.Simplified = rep
				res.SimplifiedClass = cls2.Class
				return res, nil
			}
		}
	}
	return solveClassified(q, d, cls)
}

// solveClassified dispatches on an already-computed classification.
func solveClassified(q cq.Query, d *db.DB, cls core.Classification) (Result, error) {
	var err error
	res := Result{Classification: cls, SimplifiedClass: cls.Class}
	switch cls.Class {
	case core.ClassFO:
		if cls.Graph == nil {
			// Cyclic hypergraph but safe: no attack graph exists; evaluate
			// the Theorem 6 rewriting instead.
			res.Method = MethodSafeRewriting
			var phi fo.Formula
			phi, err = fo.RewriteSafe(q)
			if err == nil {
				res.Certain, err = evalSafeRewriting(phi, nil, d)
			}
			break
		}
		res.Method = MethodFO
		res.Certain, err = CertainFO(q, d)
	case core.ClassPTimeTerminal:
		res.Method = MethodTerminal
		res.Certain, err = CertainTerminal(q, d)
	case core.ClassPTimeACk:
		res.Method = MethodACk
		res.Certain, err = CertainACk(q, cls.Shape, d)
	case core.ClassPTimeCk:
		res.Method = MethodCk
		res.Certain, err = CertainCk(q, cls.Shape, d)
	default:
		res.Method = MethodFalsifying
		res.Certain = CertainByFalsifying(q, d)
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// Certain is the convenience form of SolveResult returning just the
// decision.
func Certain(q cq.Query, d *db.DB) (bool, error) {
	r, err := SolveResult(q, d)
	return r.Certain, err
}

// SelfCheck runs the dispatched solver and, when the repair space is small
// enough (at most maxRepairs), cross-checks it against brute-force
// enumeration. It returns the dispatched result; a mismatch — which would
// indicate a bug — is reported as an error. Intended as a debugging aid
// for downstream integrations.
func SelfCheck(q cq.Query, d *db.DB, maxRepairs int64) (Result, error) {
	res, err := SolveResult(q, d)
	if err != nil {
		return res, err
	}
	if d.NumRepairs().Cmp(big.NewInt(maxRepairs)) > 0 {
		return res, nil
	}
	if brute := BruteForce(q, d); brute != res.Certain {
		return res, fmt.Errorf("solver: self-check failed: %s reports %v, enumeration %v (please report this)",
			res.Method, res.Certain, brute)
	}
	return res, nil
}
