package solver

import (
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func TestConferenceNotCertain(t *testing.T) {
	q := cq.ConferenceQuery()
	d := gen.ConferenceDB()
	if BruteForce(q, d) {
		t.Fatal("Fig.1: query is true in only 3 of 4 repairs, so not certain")
	}
	res, err := SolveResult(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Error("Solve should report not certain")
	}
	if res.Method != MethodFO {
		t.Errorf("conference query should dispatch to FO, got %v", res.Method)
	}
	rep, found := FalsifyingRepair(q, d)
	if !found {
		t.Fatal("a falsifying repair exists")
	}
	rd := db.RepairDB(rep)
	if rd.NumBlocks() != d.NumBlocks() {
		t.Error("falsifying repair must cover every block")
	}
	// The falsifying repair must place PODS in Paris and rank KDD as B (the
	// only way to dodge a Rome A-conference) — or place KDD's Rome edition
	// out of rank A.
	if !rd.Has(db.NewFact("C", 2, "PODS", "2016", "Paris")) {
		t.Errorf("unexpected falsifying repair:\n%s", rd)
	}
}

func TestConferenceCertainVariant(t *testing.T) {
	// Make Rome certain: both PODS options are Rome-bound.
	d := db.MustParse(`
		C(PODS, 2016 | Rome)
		C(PODS, 2017 | Rome)
		R(PODS | A)
	`)
	q := cq.ConferenceQuery()
	if !BruteForce(q, d) {
		t.Fatal("variant should be certain")
	}
	got, err := CertainFO(q, d)
	if err != nil || !got {
		t.Errorf("CertainFO = %v, %v", got, err)
	}
}

func TestCertainFOAgainstBruteForce(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.MustParseQuery("R(x | y)"),
		cq.ConferenceQuery(),
		cq.MustParseQuery("R(x | y), S(x | z)"),
		cq.MustParseQuery("R(x | y, z), S(y, z | w)"),
	}
	for _, q := range queries {
		cls, err := core.Classify(q)
		if err != nil || cls.Class != core.ClassFO {
			t.Fatalf("%s: classification %v %v", q, cls.Class, err)
		}
		for seed := int64(0); seed < 40; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 3, Domain: 3}, seed)
			want := BruteForce(q, d)
			got, err := CertainFO(q, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			if got != want {
				t.Errorf("%s seed %d: CertainFO=%v brute=%v on\n%s", q, seed, got, want, d)
			}
		}
	}
}

func TestCertainFOEmptyAndTrivial(t *testing.T) {
	if got, err := CertainFO(cq.Query{}, db.New()); err != nil || !got {
		t.Error("empty query is always certain")
	}
	q := cq.MustParseQuery("R(x | y)")
	if got, _ := CertainFO(q, db.New()); got {
		t.Error("nonempty query on empty database is not certain")
	}
	if _, err := CertainFO(cq.Q1(), gen.RandomDB(cq.Q1(), gen.Config{Embeddings: 1, Noise: 0, Domain: 2}, 1)); err == nil {
		t.Error("CertainFO must refuse cyclic attack graphs")
	}
}

func TestCertainTerminalC2AgainstBruteForce(t *testing.T) {
	q := cq.Ck(2)
	for seed := int64(0); seed < 60; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 3, Domain: 3}, seed)
		want := BruteForce(q, d)
		got, err := CertainTerminal(q, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: CertainTerminal=%v brute=%v on\n%s", seed, got, want, d)
		}
	}
}

func TestCertainTerminalFigure4AgainstBruteForce(t *testing.T) {
	for _, q := range []cq.Query{cq.TerminalCyclesQuery(), cq.TerminalCyclesBaseQuery()} {
		for seed := int64(0); seed < 40; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, seed)
			want := BruteForce(q, d)
			got, err := CertainTerminal(q, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v\n%s", q, seed, err, d)
			}
			if got != want {
				t.Errorf("%s seed %d: CertainTerminal=%v brute=%v on\n%s", q, seed, got, want, d)
			}
		}
	}
}

func TestCertainTerminalRejects(t *testing.T) {
	// q1 has a strong cycle; the solver bails out before cycle checking on
	// an empty (purified-away) database, so use a nonempty one.
	d := gen.RandomDB(cq.Q1(), gen.Config{Embeddings: 1, Noise: 0, Domain: 2}, 7)
	if _, err := CertainTerminal(cq.Q1(), d); err == nil {
		t.Error("CertainTerminal must refuse strong cycles")
	}
}

func TestTwoAtomWeakDirect(t *testing.T) {
	q := cq.Ck(2) // R1(x1|x2), R2(x2|x1)
	F, G := q.Atoms[0], q.Atoms[1]
	cases := []struct {
		db      string
		certain bool
	}{
		{"R1(a | b), R2(b | a)", true},
		{"R1(a | b), R1(a | c), R2(b | a)", false},
		{"R1(a | b), R1(a | c), R2(b | a), R2(c | a)", true},
		// 4-cycle: falsifiable.
		{"R1(a | b), R1(a | d), R1(c | b), R1(c | d), R2(b | a), R2(b | c), R2(d | a), R2(d | c)", false},
		{"", false}, // empty database: the empty repair falsifies q
		{"R2(b | a)", false},
	}
	for _, c := range cases {
		d := db.MustParse(c.db)
		got, err := certainTwoAtomWeak(F, G, d)
		if err != nil {
			t.Fatalf("%q: %v", c.db, err)
		}
		if got != c.certain {
			t.Errorf("%q: certain=%v, want %v", c.db, got, c.certain)
		}
		if want := BruteForce(q, d); got != want {
			t.Errorf("%q: disagrees with brute force (%v vs %v)", c.db, got, want)
		}
	}
}

func TestTwoAtomWeakRandomAgainstBruteForce(t *testing.T) {
	// A richer weak-cycle pair with swapped non-key columns, as in the
	// Fig. 4 cycles.
	q := cq.MustParseQuery("F(x, u | v), G(x, v | u)")
	F, G := q.Atoms[0], q.Atoms[1]
	for seed := int64(0); seed < 80; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 3, Domain: 2}, seed)
		got, err := certainTwoAtomWeak(F, G, d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := BruteForce(q, d); got != want {
			t.Errorf("seed %d: certain=%v brute=%v on\n%s", seed, got, want, d)
		}
	}
}

func TestTwoAtomWeakRejectsNonWeak(t *testing.T) {
	q := cq.Q0() // strong cycle: key(F) ⊄ vars... actually key(S0)={y,z} ⊄ vars(R0)
	if _, err := certainTwoAtomWeak(q.Atoms[0], q.Atoms[1], db.New()); err == nil {
		t.Error("q0 must be rejected by the weak-cycle solver")
	}
}

func TestFigure6NotCertain(t *testing.T) {
	q := cq.ACk(3)
	d := gen.Figure6DB()
	shape, ok := core.MatchCycleShape(q, true)
	if !ok {
		t.Fatal("AC(3) shape")
	}
	got, err := CertainACk(q, shape, d)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("Fig. 6 database has falsifying repairs (Fig. 7), so not certain")
	}
	if BruteForce(q, d) {
		t.Error("brute force disagrees with the paper")
	}
	// The two Fig. 7 repairs falsify q; check one explicitly:
	// anticlockwise matching a→b', b→c, c→a' plus a'→b, b'→c', wait —
	// instead verify that some falsifying repair exists and spans all blocks.
	rep, found := FalsifyingRepair(q, d)
	if !found {
		t.Fatal("falsifying repair must exist")
	}
	if db.RepairDB(rep).NumBlocks() != d.NumBlocks() {
		t.Error("repair must cover all blocks")
	}
}

func TestACkCertainInstances(t *testing.T) {
	for k := 2; k <= 4; k++ {
		q := cq.ACk(k)
		shape, _ := core.MatchCycleShape(q, true)
		// Width 1: single k-cycle per component, encoded in Sk: certain.
		d := gen.CycleDB(gen.CycleConfig{K: k, Components: 2, Width: 1, EncodeAll: true})
		got, err := CertainACk(q, shape, d)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("AC(%d) width-1 encoded instance must be certain", k)
		}
		if !BruteForce(q, d) {
			t.Errorf("AC(%d): brute force disagrees", k)
		}
		// Width 2 with all cycles encoded: a long (>k) cycle lets a repair
		// dodge every encoded cycle: not certain.
		d2 := gen.CycleDB(gen.CycleConfig{K: k, Components: 1, Width: 2, EncodeAll: true})
		got2, err := CertainACk(q, shape, d2)
		if err != nil {
			t.Fatal(err)
		}
		if got2 {
			t.Errorf("AC(%d) width-2 instance must be falsifiable", k)
		}
		if k <= 3 {
			if BruteForce(q, d2) {
				t.Errorf("AC(%d): brute force disagrees on width-2", k)
			}
		}
		// Width 2 with only aligned cycles encoded: a misaligned k-cycle is
		// not in C: not certain.
		d3 := gen.CycleDB(gen.CycleConfig{K: k, Components: 1, Width: 2, EncodeAll: false})
		got3, err := CertainACk(q, shape, d3)
		if err != nil {
			t.Fatal(err)
		}
		if got3 {
			t.Errorf("AC(%d) partially-encoded instance must be falsifiable", k)
		}
	}
}

func TestACkRandomAgainstBruteForce(t *testing.T) {
	for _, k := range []int{2, 3} {
		q := cq.ACk(k)
		shape, _ := core.MatchCycleShape(q, true)
		for seed := int64(0); seed < 50; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			want := BruteForce(q, d)
			got, err := CertainACk(q, shape, d)
			if err != nil {
				t.Fatalf("AC(%d) seed %d: %v", k, seed, err)
			}
			if got != want {
				t.Errorf("AC(%d) seed %d: CertainACk=%v brute=%v on\n%s", k, seed, got, want, d)
			}
		}
	}
}

func TestCkAgainstBruteForce(t *testing.T) {
	for _, k := range []int{2, 3} {
		q := cq.Ck(k)
		shape, ok := core.MatchCycleShape(q, false)
		if !ok {
			t.Fatalf("C(%d) shape", k)
		}
		for seed := int64(0); seed < 50; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			want := BruteForce(q, d)
			got, err := CertainCk(q, shape, d)
			if err != nil {
				t.Fatalf("C(%d) seed %d: %v", k, seed, err)
			}
			if got != want {
				t.Errorf("C(%d) seed %d: CertainCk=%v brute=%v on\n%s", k, seed, got, want, d)
			}
		}
		// Structured instances: width-1 components are certain; width-2
		// components contain longer cycles and are falsifiable.
		d1 := gen.CycleDB(gen.CycleConfig{K: k, Components: 2, Width: 1, SkipSk: true})
		if got, _ := CertainCk(q, shape, d1); !got {
			t.Errorf("C(%d) width-1 must be certain", k)
		}
		d2 := gen.CycleDB(gen.CycleConfig{K: k, Components: 1, Width: 2, SkipSk: true})
		if got, _ := CertainCk(q, shape, d2); got {
			t.Errorf("C(%d) width-2 must be falsifiable", k)
		}
	}
}

func TestQ0FalsifyingAgainstBruteForce(t *testing.T) {
	q := cq.Q0()
	for seed := int64(0); seed < 50; seed++ {
		d := gen.Q0DB(3, 2, 3, seed)
		want := BruteForce(q, d)
		if got := CertainByFalsifying(q, d); got != want {
			t.Errorf("seed %d: falsifying=%v brute=%v on\n%s", seed, got, want, d)
		}
	}
}

func TestSolveDispatch(t *testing.T) {
	cases := []struct {
		q      cq.Query
		method Method
	}{
		{cq.MustParseQuery("R(x | y), S(y | z)"), MethodFO},
		{cq.Ck(2), MethodTerminal},
		{cq.TerminalCyclesQuery(), MethodTerminal},
		{cq.ACk(3), MethodACk},
		{cq.Ck(3), MethodCk},
		{cq.Q0(), MethodFalsifying},
		{cq.Q1(), MethodFalsifying},
	}
	for _, c := range cases {
		d := gen.RandomDB(c.q, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, 42)
		res, err := SolveResult(c.q, d)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if res.Method != c.method {
			t.Errorf("%s: dispatched to %v, want %v", c.q, res.Method, c.method)
		}
		if want := BruteForce(c.q, d); res.Certain != want {
			t.Errorf("%s: Solve=%v brute=%v", c.q, res.Certain, want)
		}
	}
}

// TestSolveAgreesWithBruteForceAcrossCatalog is the central cross-check:
// every dispatched polynomial algorithm agrees with repair enumeration.
func TestSolveAgreesWithBruteForceAcrossCatalog(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.ConferenceQuery(),
		cq.Ck(2),
		cq.Ck(3),
		cq.ACk(2),
		cq.ACk(3),
		cq.TerminalCyclesBaseQuery(),
		cq.Q0(),
		cq.Q1(),
	}
	for _, q := range queries {
		for seed := int64(100); seed < 130; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
			res, err := SolveResult(q, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			if want := BruteForce(q, d); res.Certain != want {
				t.Errorf("%s seed %d (%v): Solve=%v brute=%v on\n%s",
					q, seed, res.Method, res.Certain, want, d)
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	for m := MethodFO; m <= MethodBruteForce; m++ {
		if m.String() == "" {
			t.Errorf("missing String for %d", int(m))
		}
	}
	if Method(42).String() != "Method(42)" {
		t.Error("unknown method fallback")
	}
}

func TestSelfCheck(t *testing.T) {
	d := gen.ConferenceDB()
	res, err := SelfCheck(cq.ConferenceQuery(), d, 1000)
	if err != nil || res.Certain {
		t.Errorf("SelfCheck: %v %v", res.Certain, err)
	}
	// Above the budget, no enumeration happens (still no error).
	big := gen.CycleDB(gen.CycleConfig{K: 3, Components: 20, Width: 2, EncodeAll: true})
	if _, err := SelfCheck(cq.ACk(3), big, 10); err != nil {
		t.Errorf("SelfCheck without enumeration: %v", err)
	}
	// Classification errors propagate.
	if _, err := SelfCheck(cq.MustParseQuery("R(x, y | a), S(y, z | b), T(z, x | c)"), d, 10); err == nil {
		t.Error("out-of-scope query must fail")
	}
}
