package solver

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// encodeVector returns an unambiguous length-prefixed encoding of a
// constant vector, for use as a map key.
func encodeVector(vals []string) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

// This file decides CERTAINTY({F,G}) for two-atom self-join-free queries
// whose attack graph is a weak 2-cycle — the Kolaitis–Pema "in P but not
// first-order" case, and the base case of Theorem 3.
//
// Kolaitis and Pema solve these instances by reduction to maximum
// independent set in claw-free graphs (Minty's algorithm). We exploit the
// structure the weak cycle forces to get a direct polynomial algorithm:
//
// Both attacks weak means key(G) ⊆ vars(F) and key(F) ⊆ vars(G), hence
// both keys lie in the shared variables S = vars(F) ∩ vars(G). For a fact A
// matching F, let σ(A) be the restriction to S of the valuation induced by
// A ("signature"). Facts A (of F's relation) and B (of G's) jointly embed q
// iff σ(A) = σ(B). Because key(F) ⊆ S and key(G) ⊆ S, a signature value
// determines both the F-block and the G-block containing its facts, so
// conflicts group into complete-bipartite clusters, one per signature,
// spanning exactly one F-block and one G-block.
//
// A falsifying repair picks one fact per block avoiding every cluster. Per
// block the choice only matters up to signature, and a fact that matches no
// partner (or does not match its own atom's constants) is a free choice.
// Blocks with a free choice are removed together with their incident
// signatures, iterating to a fixpoint (removing a signature edge can free
// its other endpoint). What remains is a bipartite multigraph on blocks
// whose edges are signatures live on both sides; each remaining block must
// claim one incident edge with no edge claimed twice, which is possible iff
// every connected component has at least as many edges as vertices (i.e.,
// is not a tree). Hence:
//
//	db is certain ⟺ some component of the reduced signature graph is a tree.
func certainTwoAtomWeak(F, G cq.Atom, d *db.DB) (bool, error) {
	sharedF := F.Vars().Intersect(G.Vars())
	if !G.KeyVars().SubsetOf(F.Vars()) || !F.KeyVars().SubsetOf(G.Vars()) {
		return false, fmt.Errorf("solver: two-atom solver requires a weak cycle: key(G) ⊆ vars(F) and key(F) ⊆ vars(G) (%s, %s)", F, G)
	}
	shared := sharedF.Sorted()

	sig := func(theta cq.Valuation) string {
		vals := make([]string, len(shared))
		for i, v := range shared {
			vals[i] = theta[v]
		}
		return encodeVector(vals)
	}

	// options[blockID] = set of signatures available in the block;
	// free[blockID] = true if the block has a fact that matches nothing.
	type blockInfo struct {
		id      string
		side    int // 0 = F's relation, 1 = G's relation
		options map[string]bool
		free    bool
	}
	blocks := make(map[string]*blockInfo)
	sigSides := make([]map[string][]string, 2) // side → signature → block IDs (singleton)
	sigSides[0] = make(map[string][]string)
	sigSides[1] = make(map[string][]string)

	collect := func(atom cq.Atom, side int) {
		for _, blk := range d.BlocksOf(atom.Rel) {
			bid := blk[0].BlockID()
			info := &blockInfo{id: bid, side: side, options: make(map[string]bool)}
			blocks[bid] = info
			for _, f := range blk {
				theta, ok := unifyAtomFact(atom, f)
				if !ok {
					// A fact that does not match the atom's pattern joins
					// with nothing: a free choice.
					info.free = true
					continue
				}
				s := sig(theta)
				if !info.options[s] {
					info.options[s] = true
					sigSides[side][s] = append(sigSides[side][s], bid)
				}
			}
		}
	}
	collect(F, 0)
	collect(G, 1)

	// A signature is a live edge iff present on both sides. Since the keys
	// are included in the signature, each side of a signature is a single
	// block; assert that invariant.
	type edge struct{ u, v string }
	edgesBySig := make(map[string]edge)
	edgesAt := make(map[string]map[string]bool) // blockID → live signatures
	for s, us := range sigSides[0] {
		vs, ok := sigSides[1][s]
		if !ok {
			continue
		}
		if len(us) != 1 || len(vs) != 1 {
			return false, fmt.Errorf("solver: signature spans multiple blocks; weak-cycle invariant violated")
		}
		edgesBySig[s] = edge{u: us[0], v: vs[0]}
		for _, b := range []string{us[0], vs[0]} {
			if edgesAt[b] == nil {
				edgesAt[b] = make(map[string]bool)
			}
			edgesAt[b][s] = true
		}
	}

	// Reduction: repeatedly remove blocks that have a free option or an
	// option whose signature is not (or no longer) a live edge.
	removable := func(b *blockInfo) bool {
		if b.free {
			return true
		}
		for s := range b.options {
			if _, live := edgesBySig[s]; !live {
				return true
			}
		}
		return false
	}
	queue := make([]string, 0, len(blocks))
	for bid, b := range blocks {
		if removable(b) {
			queue = append(queue, bid)
		}
	}
	removed := make(map[string]bool)
	for len(queue) > 0 {
		bid := queue[0]
		queue = queue[1:]
		if removed[bid] {
			continue
		}
		removed[bid] = true
		for s := range edgesAt[bid] {
			e, live := edgesBySig[s]
			if !live {
				continue
			}
			delete(edgesBySig, s)
			other := e.u
			if other == bid {
				other = e.v
			}
			delete(edgesAt[other], s)
			if !removed[other] && removable(blocks[other]) {
				queue = append(queue, other)
			}
		}
	}

	// Remaining blocks: every option is a live edge. Falsifiable iff every
	// connected component of the block/edge multigraph has #edges >=
	// #vertices; certain iff some component is a tree.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	compVerts := make(map[string]int)
	compEdges := make(map[string]int)
	for bid, b := range blocks {
		if !removed[bid] {
			parent[bid] = bid
			_ = b
		}
	}
	for _, e := range edgesBySig {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
		}
	}
	for bid := range parent {
		compVerts[find(bid)]++
	}
	for _, e := range edgesBySig {
		compEdges[find(e.u)]++
	}
	for root, verts := range compVerts {
		if compEdges[root] < verts {
			// This component is a tree: no falsifying choice exists within
			// it, so every repair satisfies q.
			return true, nil
		}
	}
	// Every component can avoid all conflicts — unless the query cannot be
	// satisfied at all, in which case no repair satisfies it either and the
	// answer is "not certain" (consistently handled: zero components mean a
	// falsifying repair exists whenever the database is nonempty; and for
	// an empty database the empty repair falsifies the nonempty query q).
	return false, nil
}
