package solver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/cqa-go/certainty/internal/govern"
)

// This file defines the JSON wire format of verdicts, shared by the certd
// server and its client. The format is stable: outcomes, methods, and
// error causes travel as fixed string codes so that a client can match
// them with errors.Is after a round trip.

// outcomeCodes maps the wire code of each outcome.
var outcomeCodes = map[Outcome]string{
	OutcomeCertain:    "certain",
	OutcomeNotCertain: "not-certain",
	OutcomeUnknown:    "unknown",
}

// MarshalText encodes the outcome as its wire code.
func (o Outcome) MarshalText() ([]byte, error) {
	if s, ok := outcomeCodes[o]; ok {
		return []byte(s), nil
	}
	return nil, fmt.Errorf("solver: cannot encode Outcome(%d)", int(o))
}

// UnmarshalText decodes an outcome wire code.
func (o *Outcome) UnmarshalText(text []byte) error {
	for k, v := range outcomeCodes {
		if v == string(text) {
			*o = k
			return nil
		}
	}
	return fmt.Errorf("solver: unknown outcome code %q", text)
}

// methodCodes maps the wire code of each decision method.
var methodCodes = map[Method]string{
	MethodFO:            "fo-rewriting",
	MethodTerminal:      "terminal",
	MethodACk:           "ack-marking",
	MethodCk:            "ck-marking",
	MethodFalsifying:    "falsifying-search",
	MethodBruteForce:    "brute-force",
	MethodSafeRewriting: "safe-rewriting",
}

// MarshalText encodes the method as its wire code.
func (m Method) MarshalText() ([]byte, error) {
	if s, ok := methodCodes[m]; ok {
		return []byte(s), nil
	}
	return nil, fmt.Errorf("solver: cannot encode Method(%d)", int(m))
}

// UnmarshalText decodes a method wire code.
func (m *Method) UnmarshalText(text []byte) error {
	for k, v := range methodCodes {
		if v == string(text) {
			*m = k
			return nil
		}
	}
	return fmt.Errorf("solver: unknown method code %q", text)
}

// Cutoff cause codes. Codes with canonical in-process errors decode back
// to those errors, so errors.Is works identically on both ends of the wire.
const (
	errCodeDeadline = "deadline"
	errCodeCanceled = "canceled"
	errCodeBudget   = "budget"
	errCodeSkipped  = "skipped"
	errCodePanic    = "panic"
	errCodeInternal = "internal"
)

// WireError is a verdict cutoff cause as transported over the wire. Causes
// without a canonical error value (contained panics, unexpected internal
// errors) decode to a *WireError carrying the original message.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
}

// Error renders the transported cause.
func (e *WireError) Error() string {
	if e.Message == "" {
		return "remote cutoff: " + e.Code
	}
	return fmt.Sprintf("remote cutoff (%s): %s", e.Code, e.Message)
}

// encodeVerdictErr maps a cutoff cause to its wire form.
func encodeVerdictErr(err error) *WireError {
	if err == nil {
		return nil
	}
	var pe *govern.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &WireError{Code: errCodeDeadline}
	case errors.Is(err, context.Canceled):
		return &WireError{Code: errCodeCanceled}
	case errors.Is(err, govern.ErrBudget):
		return &WireError{Code: errCodeBudget}
	case errors.Is(err, ErrExactSkipped):
		return &WireError{Code: errCodeSkipped}
	case errors.As(err, &pe):
		return &WireError{Code: errCodePanic, Message: err.Error()}
	default:
		return &WireError{Code: errCodeInternal, Message: err.Error()}
	}
}

// decodeVerdictErr maps a wire cause back to the canonical in-process
// error where one exists.
func decodeVerdictErr(w *WireError) error {
	if w == nil {
		return nil
	}
	switch w.Code {
	case errCodeDeadline:
		return context.DeadlineExceeded
	case errCodeCanceled:
		return context.Canceled
	case errCodeBudget:
		return govern.ErrBudget
	case errCodeSkipped:
		return ErrExactSkipped
	default:
		return w
	}
}

// verdictWire is the JSON shape of a Verdict.
type verdictWire struct {
	Outcome  Outcome    `json:"outcome"`
	Result   Result     `json:"result"`
	Error    *WireError `json:"error,omitempty"`
	Evidence *Evidence  `json:"evidence,omitempty"`
}

// MarshalJSON encodes the verdict for the wire. The Err field travels as a
// {code, message} pair; see WireError for the code set.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return json.Marshal(verdictWire{
		Outcome:  v.Outcome,
		Result:   v.Result,
		Error:    encodeVerdictErr(v.Err),
		Evidence: v.Evidence,
	})
}

// UnmarshalJSON decodes a verdict produced by MarshalJSON. Canonical cutoff
// causes (deadline, cancellation, budget, skipped-exact) decode back to
// their in-process error values.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var w verdictWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*v = Verdict{
		Outcome:  w.Outcome,
		Result:   w.Result,
		Err:      decodeVerdictErr(w.Error),
		Evidence: w.Evidence,
	}
	return nil
}
