package solver

import (
	"context"
	"runtime"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/shard"
)

// metricShardSolves counts per-shard sub-solves by outcome; the per-shard
// identity (component index, shard index, fact count) rides on the
// "shard/solve" spans.
const metricShardSolves = "solver_shard_solves_total"

func init() {
	obs.Default.Help(metricShardSolves, "Sub-instance solves executed by the shard join, by outcome.")
}

// solveSharded is the WithShards path of Solve: resolve the plan, then run
// the component-partitioned join.
func solveSharded(ctx context.Context, q cq.Query, d *db.DB, cfg config) (Verdict, error) {
	var p *Plan
	var err error
	if cfg.plans != nil {
		p, err = cfg.plans.Get(ctx, q)
	} else {
		p, err = CompilePlan(q)
	}
	if err != nil {
		return Verdict{}, err
	}
	if cfg.memo != nil {
		v, _, err := p.SolveShardedMemo(ctx, d, cfg.shards, cfg.opts, cfg.memo)
		return v, err
	}
	return p.SolveSharded(ctx, d, cfg.shards, cfg.opts)
}

// SolveSharded executes the plan with component-partitioned data
// parallelism: the instance splits along the shard.Decompose partition, the
// sub-instances are decided on the bounded worker pool, and the verdicts
// recombine exactly — conjunction across variable-disjoint query
// components, disjunction across a component's data shards (see the
// internal/shard package comment for why this algebra is exact). Conclusive
// verdicts are identical to SolveCtx's on the same instance.
//
// maxShards caps the data shards per query component; < 0 selects
// GOMAXPROCS. The step budget in opts is split across shards with ceiling
// division (a finite budget never becomes an unlimited share); the deadline
// is shared, not split. When the partition yields at most one shard there is
// nothing to fan out and the plan solves monolithically, byte-identically to
// SolveCtx.
//
// A cut-off sharded solve degrades like a monolithic one: OutcomeUnknown
// with the summed step count of the cut-off shards and, on the exponential
// path, the Monte-Carlo sampling pass over the whole instance (a sampled
// falsifying repair still upgrades the verdict to a conclusive
// OutcomeNotCertain).
func (p *Plan) SolveSharded(ctx context.Context, d *db.DB, maxShards int, opts Options) (Verdict, error) {
	v, _, err := p.SolveShardedMemo(ctx, d, maxShards, opts, nil)
	return v, err
}

// SolveShardedMemo is SolveSharded consulting a per-shard verdict memo: for
// every data shard it first looks up the shard's content fingerprint and
// reuses a memoized conclusive outcome instead of solving, then memoizes
// the conclusive outcomes of the shards it did solve. The memo never
// changes answers — a fingerprint addresses the shard's exact content, so a
// hit replays the verdict the solve would have computed — and conclusive
// verdicts stay byte-identical to SolveSharded and SolveCtx. The report
// accounts for the reuse; memo may be nil (plain SolveSharded behavior).
//
// Plans carrying a database rewrite (projection simplification) skip the
// memo: their shards are shards of the rewritten database, whose blocks are
// rebuilt per call, so fingerprinting them would hash fresh content every
// time and reuse nothing across calls.
func (p *Plan) SolveShardedMemo(ctx context.Context, d *db.DB, maxShards int, opts Options, memo *ShardMemo) (Verdict, DeltaReport, error) {
	if maxShards < 0 {
		maxShards = runtime.GOMAXPROCS(0)
	}
	ctx, root := obs.StartSpan(ctx, "solve")
	root.SetAttr("plan", "sharded")
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	var v Verdict
	var rep DeltaReport
	var steps int64
	err := govern.Safe(func() error {
		var innerErr error
		v, steps, innerErr = p.shardJoin(ctx, d, maxShards, opts, memo, &rep)
		return innerErr
	})
	if root != nil {
		if err == nil {
			root.SetAttr("class", v.Result.Classification.Class.Code())
			root.SetAttr("method", methodCodes[v.Result.Method])
			root.SetAttr("outcome", outcomeCodes[v.Outcome])
		} else {
			root.SetAttr("error", err.Error())
		}
		root.SetInt("steps", steps)
		root.End()
	}
	if err != nil {
		return Verdict{}, DeltaReport{}, err
	}
	return v, rep, nil
}

// shardOutcome is one shard's contribution to the join.
type shardOutcome struct {
	outcome Outcome
	err     error // cutoff cause when outcome is OutcomeUnknown
	steps   int64
	solved  bool // false when the fan-out was cancelled before this shard ran
}

// memoScope is the per-component view of the shard memo handed to
// solveComponent: the memo itself, the component's shard fingerprints and
// block-ID lists, and the report the reuse is accounted into. nil disables
// memoization for the component.
type memoScope struct {
	memo   *ShardMemo
	fps    []string
	blocks [][]string
	rep    *DeltaReport
}

// shardJoin does the decomposition, the fan-out, and the combine. It runs
// inside the caller's govern.Safe, so panics anywhere below surface as
// errors.
func (p *Plan) shardJoin(ctx context.Context, d *db.DB, maxShards int, opts Options, memo *ShardMemo, rep *DeltaReport) (Verdict, int64, error) {
	execD := d
	if p.rewriteDB != nil {
		var err error
		execD, err = p.rewriteDB(d)
		if err != nil {
			return Verdict{}, 0, err
		}
	}
	_, dsp := obs.StartSpan(ctx, "shard/decompose")
	dec := shard.Decompose(p.execQ, execD, maxShards)
	dsp.SetInt("components", int64(len(dec.Components)))
	dsp.SetInt("shards", int64(dec.NumShards()))
	dsp.End()

	// Component plans: the single-component case (every connected query)
	// reuses this plan's compiled artifacts; a genuinely disconnected query
	// compiles one plan per component. If any component resists compilation
	// — which cannot happen for the paper's query classes, but is cheap to
	// guard — the whole instance falls back to the monolithic path rather
	// than failing where SolveCtx would have succeeded.
	plans, ok := p.componentPlans(dec)
	if p.execQ.IsEmpty() || dec.NumShards() <= 1 || !ok {
		g := govern.New(ctx, govern.Options{Budget: opts.Budget, Fault: opts.Fault})
		defer g.Close()
		v, err := p.solveGoverned(g.Attach(), g, d, opts)
		return v, g.Steps(), err
	}

	budgetShare := int64(0)
	if opts.Budget > 0 {
		n := int64(dec.NumShards())
		budgetShare = (opts.Budget + n - 1) / n
	}
	shardOpts := Options{
		Budget:         budgetShare,
		Fault:          opts.Fault,
		DegradeSamples: -1, // degradation sampling happens once, below, on the whole instance
	}

	// The memo engages only for plans without a database rewrite: execD is
	// then the caller's database, whose per-block digests the copy-on-write
	// index maintains incrementally, so fingerprinting is cheap and the
	// fingerprints are stable across mutations of other blocks.
	useMemo := memo != nil && p.rewriteDB == nil

	// Conjunction across query components, evaluated in order with early
	// exit: one not-certain component settles the whole instance.
	outcome := OutcomeCertain
	var firstCut error
	var totalSteps int64
	for j := range dec.Components {
		var mc *memoScope
		if useMemo {
			mc = &memoScope{
				memo:   memo,
				fps:    dec.ComponentFingerprints(execD, j),
				blocks: dec.Blocks[j],
				rep:    rep,
			}
		}
		cv, steps, err := solveComponent(ctx, plans[j], dec.Shards[j], j, shardOpts, mc)
		totalSteps += steps
		if err != nil {
			return Verdict{}, totalSteps, err
		}
		if cv.outcome == OutcomeNotCertain {
			outcome = OutcomeNotCertain
			firstCut = nil
			break
		}
		if cv.outcome == OutcomeUnknown {
			outcome = OutcomeUnknown
			if firstCut == nil {
				firstCut = cv.err
			}
		}
	}

	v := Verdict{
		Outcome: outcome,
		Result: Result{
			Certain:         outcome == OutcomeCertain,
			Method:          p.Method,
			Classification:  p.cls,
			Simplified:      p.simplified,
			SimplifiedClass: p.execCls.Class,
		},
	}
	if outcome == OutcomeUnknown {
		if firstCut == nil {
			firstCut = ctx.Err()
		}
		v.Err = firstCut
		v.Evidence = &Evidence{Steps: totalSteps}
		if p.Method == MethodFalsifying {
			sampleInto(context.WithoutCancel(ctx), &v, p.execQ, execD, opts)
		}
	}
	return v, totalSteps, nil
}

// componentPlans resolves the per-component plans of a decomposition. The
// single-component case reuses p's exec-stage artifacts (no recompilation);
// multi-component queries compile a plan per component.
func (p *Plan) componentPlans(dec *shard.Decomposition) ([]*Plan, bool) {
	if len(dec.Components) == 1 {
		return []*Plan{p.execStage()}, true
	}
	plans := make([]*Plan, len(dec.Components))
	for j, qj := range dec.Components {
		pj, err := CompilePlan(qj)
		if err != nil {
			return nil, false
		}
		plans[j] = pj
	}
	return plans, true
}

// execStage returns a plan that decides the exec-stage instance directly:
// same compiled artifacts, no database rewrite (the caller already applied
// it). Used to solve shards of the (single) exec query component.
func (p *Plan) execStage() *Plan {
	if p.rewriteDB == nil {
		return p
	}
	return &Plan{
		Query:    p.execQ,
		Key:      p.Key,
		Class:    p.execCls.Class,
		Method:   p.Method,
		cls:      p.execCls,
		execQ:    p.execQ,
		execCls:  p.execCls,
		foProg:   p.foProg,
		safePhi:  p.safePhi,
		safeProg: p.safeProg,
	}
}

// solveComponent decides one query component as the disjunction of its data
// shards on the worker pool: any certain shard settles the component
// (remaining shards are cancelled), all-not-certain shards make it not
// certain, anything else — a cut-off shard, or a fan-out stopped by the
// caller's deadline — leaves it unknown with the first cutoff cause.
//
// With a memo scope, a pre-pass first resolves every shard whose
// fingerprint hits the memo: a memoized certain shard settles the component
// with zero solves, memoized not-certain shards drop out of the fan-out,
// and only the misses are actually solved — whose conclusive outcomes are
// memoized afterwards. Reuse changes scheduling only; the combine below
// sees exactly the outcomes a full fan-out would have produced.
func solveComponent(ctx context.Context, pj *Plan, shards []*db.DB, compIdx int, shardOpts Options, mc *memoScope) (shardOutcome, int64, error) {
	if len(shards) == 0 {
		// No facts for this component's relations: no embedding can exist,
		// so the component is falsified by every repair (components are
		// non-empty queries).
		return shardOutcome{outcome: OutcomeNotCertain, solved: true}, 0, nil
	}
	results := make([]shardOutcome, len(shards))
	pending := make([]int, 0, len(shards))
	if mc != nil {
		for i := range shards {
			if o, ok := mc.memo.Get(mc.fps[i]); ok {
				results[i] = shardOutcome{outcome: o, solved: true}
				mc.rep.ShardsReused++
				if o == OutcomeCertain {
					// Disjunction short-circuit straight from the memo.
					return shardOutcome{outcome: OutcomeCertain, solved: true}, 0, nil
				}
				continue
			}
			pending = append(pending, i)
		}
	} else {
		for i := range shards {
			pending = append(pending, i)
		}
	}
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = shard.ForEach(fanCtx, len(pending), func(k int) {
		i := pending[k]
		sctx, sp := obs.StartSpan(fanCtx, "shard/solve")
		sp.SetInt("component", int64(compIdx))
		sp.SetInt("shard", int64(i))
		sp.SetInt("facts", int64(shards[i].Len()))
		v, err := pj.SolveCtx(sctx, shards[i], shardOpts)
		if err != nil {
			results[i] = shardOutcome{err: err, solved: true}
			sp.SetAttr("error", err.Error())
			sp.End()
			cancel()
			return
		}
		out := shardOutcome{outcome: v.Outcome, solved: true}
		if v.Outcome == OutcomeUnknown {
			out.err = v.Err
		}
		if v.Evidence != nil {
			out.steps = v.Evidence.Steps
		}
		results[i] = out
		sp.SetAttr("outcome", outcomeCodes[v.Outcome])
		sp.End()
		obs.Default.Counter(metricShardSolves, obs.L{K: "outcome", V: outcomeCodes[v.Outcome]}).Inc()
		if v.Outcome == OutcomeCertain {
			cancel() // disjunction short-circuit: the component is certain
		}
	})
	if mc != nil {
		// Account and memoize after the fan-out, on one goroutine: the
		// report is not written concurrently, and only conclusive,
		// error-free outcomes enter the memo.
		for _, i := range pending {
			r := results[i]
			if !r.solved {
				continue
			}
			mc.rep.ShardsRecomputed++
			if r.err == nil && (r.outcome == OutcomeCertain || r.outcome == OutcomeNotCertain) {
				mc.memo.Put(mc.fps[i], r.outcome, mc.blocks[i])
			}
		}
	}

	comp := shardOutcome{outcome: OutcomeNotCertain, solved: true}
	var steps int64
	sawGap := false
	for _, r := range results {
		steps += r.steps
		if !r.solved {
			sawGap = true
			continue
		}
		if r.err != nil && r.outcome != OutcomeUnknown {
			return shardOutcome{}, steps, r.err
		}
		switch r.outcome {
		case OutcomeCertain:
			return shardOutcome{outcome: OutcomeCertain, solved: true}, steps, nil
		case OutcomeUnknown:
			comp.outcome = OutcomeUnknown
			if comp.err == nil {
				comp.err = r.err
			}
		}
	}
	if sawGap {
		// Shards were skipped (deadline or caller cancellation) and none of
		// the solved ones was certain: the disjunction is undetermined.
		comp.outcome = OutcomeUnknown
		if comp.err == nil {
			comp.err = ctx.Err()
		}
	}
	return comp, steps, nil
}
