package solver

import (
	"math/big"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
)

// TestSolveRandomQueries is the widest net in the suite: random
// self-join-free acyclic queries of every attack-graph shape, random
// databases, dispatched solver vs brute force. Any classification or
// algorithm bug that affects answers on small instances surfaces here.
func TestSolveRandomQueries(t *testing.T) {
	classCounts := make(map[core.Class]int)
	checked := 0
	for qseed := int64(0); qseed < 120; qseed++ {
		q := gen.RandomAcyclicQuery(qseed, 4)
		cls, err := core.Classify(q)
		if err != nil {
			continue // cyclic or otherwise out of scope
		}
		classCounts[cls.Class]++
		for dseed := int64(0); dseed < 6; dseed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, dseed)
			if d.NumRepairs().Cmp(big.NewInt(4096)) > 0 {
				continue
			}
			res, err := SolveResult(q, d)
			if err != nil {
				t.Fatalf("q=%s dseed=%d: %v", q, dseed, err)
			}
			checked++
			if want := BruteForce(q, d); res.Certain != want {
				t.Errorf("q=%s (class %v, method %v) dseed=%d: solve=%v brute=%v\ndb:\n%s",
					q, cls.Class, res.Method, dseed, res.Certain, want, d)
			}
		}
	}
	if checked < 300 {
		t.Errorf("too few instances checked: %d", checked)
	}
	// The random family must exercise at least the FO class heavily and
	// hit some cyclic-attack-graph classes.
	if classCounts[core.ClassFO] == 0 {
		t.Error("no FO queries generated")
	}
	t.Logf("class distribution over random queries: %v, instances checked: %d", classCounts, checked)
}

// TestSolveRandomKeySwappedQueries generates queries biased toward attack
// cycles (atoms sharing variables with swapped key/non-key roles) to hit
// the non-FO classes more often.
func TestSolveRandomKeySwappedQueries(t *testing.T) {
	families := []string{
		"F(x, a | b), G(x, b | a)",
		"F(x, a | b), G(x, b | a), H(y, c | d), I(y, d | c)",
		"F(a | b), G(b | a), S(a, b | z)",
		"R1(x | y), R2(y | x), T(x | w)",
		"R(x | y), S(y | x, z)",
		"R(x, y | z), S(y, z | x)",
	}
	for _, fam := range families {
		q := cq.MustParseQuery(fam)
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for dseed := int64(0); dseed < 25; dseed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, dseed)
			if d.NumRepairs().Cmp(big.NewInt(100_000)) > 0 {
				continue
			}
			res, err := SolveResult(q, d)
			if err != nil {
				t.Fatalf("%s dseed=%d: %v", fam, dseed, err)
			}
			if want := BruteForce(q, d); res.Certain != want {
				t.Errorf("%s (class %v, method %v) dseed=%d: solve=%v brute=%v\ndb:\n%s",
					fam, cls.Class, res.Method, dseed, res.Certain, want, d)
			}
		}
	}
}
