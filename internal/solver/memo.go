package solver

import (
	"sync"

	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/obs"
)

// DefaultShardMemoSize bounds the shard memo when the caller passes no
// explicit size. Entries are an outcome plus a block-ID list, so even the
// default is a few hundred kilobytes, not a cache of verdict payloads.
const DefaultShardMemoSize = 4096

// ShardMemo is the bounded per-shard verdict memo behind delta re-solve: it
// maps a shard fingerprint (shard.Decomposition.ShardFingerprint — canonical
// component query ⊕ sorted per-block content digests) to the shard's
// conclusive outcome. Because the key addresses the shard's exact content,
// a stored outcome can never be served for a different sub-instance: a
// mutation changes the touched blocks' digests, so the touched shards'
// fingerprints miss and recompute while every untouched shard hits.
//
// Only conclusive outcomes (OutcomeCertain, OutcomeNotCertain) are stored.
// OutcomeUnknown depends on the request's budget and deadline, so replaying
// it could make a later, better-resourced solve less conclusive; Put
// silently drops it.
//
// Invalidate is memory hygiene and observability, not correctness: the
// server calls it with the block IDs a /v1/db mutation touched so stale
// entries are dropped eagerly (they could otherwise only age out by LRU,
// since their fingerprints will never be looked up again). The byBlock
// index makes that eviction block-granular — an entry survives every
// mutation whose touched blocks its fingerprint excludes.
//
// Safe for concurrent use.
type ShardMemo struct {
	mu      sync.Mutex
	c       *lru.Cache[string, shardMemoEntry]
	byBlock map[string]map[string]struct{} // block ID → fingerprints covering it
	m       *obs.CacheMetrics
	inval   uint64
}

// shardMemoEntry is one memoized shard verdict: the conclusive outcome and
// the shard's block IDs, kept so eviction and invalidation can unindex the
// entry from byBlock.
type shardMemoEntry struct {
	outcome Outcome
	blocks  []string
}

// NewShardMemo returns a memo holding at most size entries (size <= 0
// selects DefaultShardMemoSize). Metrics m may be nil (uninstrumented).
func NewShardMemo(size int, m *obs.CacheMetrics) *ShardMemo {
	if size <= 0 {
		size = DefaultShardMemoSize
	}
	sm := &ShardMemo{
		c:       lru.New[string, shardMemoEntry](size),
		byBlock: make(map[string]map[string]struct{}),
		m:       m,
	}
	m.SetSize(0, sm.c.Cap())
	return sm
}

// Get returns the memoized conclusive outcome for fingerprint fp.
func (sm *ShardMemo) Get(fp string) (Outcome, bool) {
	sm.mu.Lock()
	e, ok := sm.c.Get(fp)
	sm.mu.Unlock()
	if ok {
		sm.m.Hit()
		return e.outcome, true
	}
	sm.m.Miss()
	return OutcomeUnknown, false
}

// Contains reports whether fp is memoized, without touching recency or
// counters. Test and introspection surface.
func (sm *ShardMemo) Contains(fp string) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	_, ok := sm.c.Peek(fp)
	return ok
}

// Put memoizes a conclusive shard outcome under fingerprint fp, indexing it
// by the shard's block IDs. OutcomeUnknown is dropped (budget-dependent,
// see the type comment).
func (sm *ShardMemo) Put(fp string, o Outcome, blocks []string) {
	if o != OutcomeCertain && o != OutcomeNotCertain {
		return
	}
	sm.mu.Lock()
	evictedFP, evicted, wasEvicted := sm.c.PutEvicted(fp, shardMemoEntry{outcome: o, blocks: blocks})
	if wasEvicted {
		sm.unindexLocked(evictedFP, evicted.blocks)
		sm.m.Evicted(1)
	}
	for _, bid := range blocks {
		set := sm.byBlock[bid]
		if set == nil {
			set = make(map[string]struct{})
			sm.byBlock[bid] = set
		}
		set[fp] = struct{}{}
	}
	sm.m.SetSize(sm.c.Len(), sm.c.Cap())
	sm.mu.Unlock()
}

// Invalidate drops every entry whose fingerprint covers any of the given
// block IDs and returns how many entries were removed. Entries whose
// fingerprints exclude all touched blocks are untouched — this is the
// block-granular guarantee the metamorphic suite locks down.
func (sm *ShardMemo) Invalidate(blocks []string) int {
	sm.mu.Lock()
	removed := 0
	for _, bid := range blocks {
		for fp := range sm.byBlock[bid] {
			if e, ok := sm.c.Peek(fp); ok {
				sm.c.Delete(fp)
				sm.unindexLocked(fp, e.blocks)
				removed++
			}
		}
		delete(sm.byBlock, bid)
	}
	sm.inval += uint64(removed)
	sm.m.SetSize(sm.c.Len(), sm.c.Cap())
	sm.mu.Unlock()
	return removed
}

// unindexLocked removes fp from the byBlock sets of the given blocks.
// Caller holds mu.
func (sm *ShardMemo) unindexLocked(fp string, blocks []string) {
	for _, bid := range blocks {
		if set, ok := sm.byBlock[bid]; ok {
			delete(set, fp)
			if len(set) == 0 {
				delete(sm.byBlock, bid)
			}
		}
	}
}

// Len returns the number of memoized shard verdicts.
func (sm *ShardMemo) Len() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.c.Len()
}

// Invalidations returns how many entries Invalidate has removed.
func (sm *ShardMemo) Invalidations() uint64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.inval
}

// Stats snapshots the underlying cache counters (hits, misses, capacity
// evictions — invalidations are reported separately by Invalidations).
func (sm *ShardMemo) Stats() lru.Stats {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.c.Stats()
}
