package solver

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
)

// roundTrip marshals v and unmarshals it back.
func roundTrip(t *testing.T, v Verdict) Verdict {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Verdict
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return back
}

// assertVerdictEqual compares the wire-visible parts of two verdicts.
func assertVerdictEqual(t *testing.T, got, want Verdict) {
	t.Helper()
	if got.Outcome != want.Outcome {
		t.Errorf("Outcome = %v, want %v", got.Outcome, want.Outcome)
	}
	if got.Result.Certain != want.Result.Certain ||
		got.Result.Method != want.Result.Method ||
		got.Result.Classification.Class != want.Result.Classification.Class ||
		got.Result.Classification.Reason != want.Result.Classification.Reason ||
		got.Result.SimplifiedClass != want.Result.SimplifiedClass {
		t.Errorf("Result = %+v, want %+v", got.Result, want.Result)
	}
	if (want.Err == nil) != (got.Err == nil) || (want.Err != nil && !errors.Is(got.Err, want.Err)) {
		t.Errorf("Err = %v, want %v", got.Err, want.Err)
	}
	if (want.Evidence == nil) != (got.Evidence == nil) {
		t.Fatalf("Evidence presence mismatch: got %v, want %v", got.Evidence, want.Evidence)
	}
	if want.Evidence == nil {
		return
	}
	ge, we := got.Evidence, want.Evidence
	if ge.Steps != we.Steps || ge.TotalBlocks != we.TotalBlocks || ge.BestDepth != we.BestDepth ||
		ge.Samples != we.Samples || ge.Estimate != we.Estimate {
		t.Errorf("Evidence = %+v, want %+v", ge, we)
	}
	if len(ge.BestCandidate) != len(we.BestCandidate) {
		t.Errorf("BestCandidate has %d facts, want %d", len(ge.BestCandidate), len(we.BestCandidate))
	} else {
		for i := range we.BestCandidate {
			if !ge.BestCandidate[i].Equal(we.BestCandidate[i]) {
				t.Errorf("BestCandidate[%d] = %v, want %v", i, ge.BestCandidate[i], we.BestCandidate[i])
			}
		}
	}
	if (we.FalsifyingSample == nil) != (ge.FalsifyingSample == nil) {
		t.Fatalf("FalsifyingSample presence mismatch")
	}
	if we.FalsifyingSample != nil && !ge.FalsifyingSample.Equal(we.FalsifyingSample) {
		t.Errorf("FalsifyingSample = %v, want %v", ge.FalsifyingSample, we.FalsifyingSample)
	}
}

// TestVerdictJSONRoundTripExact covers conclusive verdicts from real solves
// on both an FO-class and a coNP-class instance.
func TestVerdictJSONRoundTripExact(t *testing.T) {
	cases := []struct {
		name string
		q    cq.Query
		d    *db.DB
	}{
		{"FO certain", cq.MustParseQuery("R(x | y)"), db.MustParse("R(a | b), R(c | d)")},
		{"FO not certain", cq.MustParseQuery("R(x | y), S(y | z)"), db.MustParse("R(a | b), R(a | c), S(b | d)")},
		{"coNP certain", cq.Q0(), oddRingDB(5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := SolveCtx(context.Background(), tc.q, tc.d, Options{})
			if err != nil {
				t.Fatalf("SolveCtx: %v", err)
			}
			assertVerdictEqual(t, roundTrip(t, v), v)
		})
	}
}

// TestVerdictJSONRoundTripDegraded covers a budget-cutoff verdict with the
// full evidence payload: partial search state plus sampling results.
func TestVerdictJSONRoundTripDegraded(t *testing.T) {
	v, err := SolveCtx(context.Background(), cq.Q0(), oddRingDB(21), Options{
		Budget:         60,
		DegradeSamples: 100,
		SampleSeed:     1,
	})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	if v.Outcome != OutcomeUnknown || v.Evidence == nil {
		t.Fatalf("want a cut-off verdict with evidence, got %+v", v)
	}
	back := roundTrip(t, v)
	assertVerdictEqual(t, back, v)
	if !errors.Is(back.Err, govern.ErrBudget) {
		t.Errorf("decoded Err = %v, want ErrBudget", back.Err)
	}
}

// TestVerdictJSONRoundTripSampledWitness covers the upgraded verdict whose
// evidence carries a sampled falsifying repair (a full db.DB on the wire).
func TestVerdictJSONRoundTripSampledWitness(t *testing.T) {
	boom := errors.New("injected fault")
	v, err := SolveCtx(context.Background(), cq.Q0(), db.MustParse("R0(a | b), R0(a | c)"), Options{
		Fault:          func(int64) error { return boom },
		DegradeSamples: 50,
		SampleSeed:     3,
	})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	if v.Evidence == nil || v.Evidence.FalsifyingSample == nil {
		t.Fatalf("want a sampled witness, got %+v", v)
	}
	assertVerdictEqual(t, roundTrip(t, v), v)
}

// TestVerdictJSONErrorCodes pins the wire codes of the canonical cutoff
// causes and checks each decodes back to an errors.Is-matchable value.
func TestVerdictJSONErrorCodes(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{context.DeadlineExceeded, "deadline"},
		{context.Canceled, "canceled"},
		{govern.ErrBudget, "budget"},
		{ErrExactSkipped, "skipped"},
	}
	for _, tc := range cases {
		w := encodeVerdictErr(tc.err)
		if w.Code != tc.code {
			t.Errorf("encode(%v).Code = %q, want %q", tc.err, w.Code, tc.code)
		}
		if back := decodeVerdictErr(w); !errors.Is(back, tc.err) {
			t.Errorf("decode(%q) = %v, not errors.Is-matchable with %v", tc.code, back, tc.err)
		}
	}
	// Unknown causes survive as messages.
	w := encodeVerdictErr(errors.New("weird"))
	if w.Code != "internal" || w.Message != "weird" {
		t.Errorf("encode(weird) = %+v", w)
	}
	if back := decodeVerdictErr(w); back.Error() == "" {
		t.Error("decoded internal error lost its message")
	}
}

// TestDegradedSolve exercises the breaker short-circuit path: no exact
// search, classification still exact, sampling evidence present.
func TestDegradedSolve(t *testing.T) {
	v, err := Degraded(context.Background(), cq.Q0(), oddRingDB(5), Options{DegradeSamples: 100, SampleSeed: 1})
	if err != nil {
		t.Fatalf("Degraded: %v", err)
	}
	if v.Outcome != OutcomeUnknown {
		t.Fatalf("Outcome = %v, want unknown (odd ring is certain; sampling cannot prove it)", v.Outcome)
	}
	if !errors.Is(v.Err, ErrExactSkipped) {
		t.Fatalf("Err = %v, want ErrExactSkipped", v.Err)
	}
	if v.Result.Method != MethodFalsifying {
		t.Errorf("Method = %v, want falsifying", v.Result.Method)
	}
	if v.Evidence == nil || v.Evidence.Samples == 0 {
		t.Fatalf("want sampling evidence, got %+v", v.Evidence)
	}
	// On an instance with abundant falsifying repairs the sampler finds a
	// conclusive witness even without the exact search.
	v2, err := Degraded(context.Background(), cq.Q0(), db.MustParse("R0(a | b), R0(a | c)"), Options{DegradeSamples: 50, SampleSeed: 3})
	if err != nil {
		t.Fatalf("Degraded: %v", err)
	}
	if v2.Outcome != OutcomeNotCertain || v2.Err != nil || v2.Evidence.FalsifyingSample == nil {
		t.Fatalf("want a conclusive sampled witness, got %+v", v2)
	}
	assertVerdictEqual(t, roundTrip(t, v), v)
}
