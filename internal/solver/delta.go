package solver

import (
	"context"
	"sort"

	"github.com/cqa-go/certainty/internal/db"
)

// Delta describes one mutation batch against a database: the facts inserted
// and the facts deleted. The facts may be the raw request batch rather than
// the effective (normalized) one — the touched-block set of the raw batch
// is a superset of the effective one, and invalidating a superset is always
// safe (content addressing keeps untouched shards hitting regardless).
type Delta struct {
	Ins []db.Fact
	Del []db.Fact
}

// TouchedBlocks returns the sorted, deduplicated block IDs the delta's
// facts belong to — the (relation, block) keys a mutation can possibly
// affect, and exactly what ShardMemo.Invalidate consumes.
func (dl Delta) TouchedBlocks() []string {
	seen := make(map[string]struct{}, len(dl.Ins)+len(dl.Del))
	bids := make([]string, 0, len(dl.Ins)+len(dl.Del))
	for _, fs := range [2][]db.Fact{dl.Ins, dl.Del} {
		for _, f := range fs {
			bid := f.BlockID()
			if _, ok := seen[bid]; ok {
				continue
			}
			seen[bid] = struct{}{}
			bids = append(bids, bid)
		}
	}
	sort.Strings(bids)
	return bids
}

// DeltaReport accounts for one memoized sharded solve: how many shard
// sub-verdicts were reused from the memo, how many were recomputed, and how
// many memo entries the delta's invalidation removed. Reused + recomputed
// can be less than the decomposition's shard count when the combine
// short-circuited (a certain shard settles its component's disjunction, a
// not-certain component settles the conjunction).
type DeltaReport struct {
	ShardsReused     int
	ShardsRecomputed int
	Invalidated      int
}

// Resolve is the incremental entry point of delta re-solve: given the
// post-mutation database d and the delta that produced it, it invalidates
// the memo entries the delta's blocks cover, then re-solves with the shard
// memo — recomputing exactly the shards whose content changed and reusing
// the memoized conclusive verdicts of the rest, recombined with the exact
// OR/AND algebra of the shard join. Conclusive verdicts are byte-identical
// to a from-scratch SolveSharded on d; the report says how much work the
// memo saved.
//
// maxShards and opts behave as in SolveSharded. memo may be nil, in which
// case Resolve degenerates to a full re-solve with an all-recomputed
// report.
func (p *Plan) Resolve(ctx context.Context, d *db.DB, dl Delta, memo *ShardMemo, maxShards int, opts Options) (Verdict, DeltaReport, error) {
	var rep DeltaReport
	if memo != nil {
		rep.Invalidated = memo.Invalidate(dl.TouchedBlocks())
	}
	v, solveRep, err := p.SolveShardedMemo(ctx, d, maxShards, opts, memo)
	rep.ShardsReused = solveRep.ShardsReused
	rep.ShardsRecomputed = solveRep.ShardsRecomputed
	return v, rep, err
}
