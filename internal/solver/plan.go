package solver

import (
	"context"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
)

// Plan is the immutable compiled decision strategy for one query: the
// classification, the method Solve would select, the projection
// simplification (with its reusable database rewriter) when it applies, and
// the method's static artifacts — the FO rewriting program of Theorem 1 and
// the safe certain rewriting of Theorem 6. All of this depends on the query
// alone, so it is computed once by CompilePlan and reused across databases
// and goroutines; executing a plan returns byte-identical Results and
// Verdicts to Solve/SolveCtx on the same query.
//
// Only the data-dependent work stays at solve time: candidate enumeration
// (which keys on relation cardinalities and the block index) and the
// decision procedures themselves.
type Plan struct {
	// Query is the query the plan was compiled for, exactly as given to
	// CompilePlan.
	Query cq.Query
	// Key is Query's canonical key; the plan cache keys on it, so queries
	// equal up to variable renaming and atom reordering share a plan.
	Key string
	// Class is the paper classification of Query.
	Class core.Class
	// Method is the decision procedure the plan executes — the method of
	// the simplified query when the projection simplification moved the
	// instance into a polynomial class.
	Method Method

	cls        core.Classification
	simplified *Simplification
	execQ      cq.Query            // the query actually dispatched (== Query unless simplified)
	execCls    core.Classification // its classification
	rewriteDB  func(*db.DB) (*db.DB, error)
	foProg     *FOProgram   // compiled Theorem 1 program when Method == MethodFO
	safePhi    fo.Formula   // Theorem 6 rewriting when Method == MethodSafeRewriting
	safeProg   *fo.Compiled // safePhi compiled to the closure/interned trees
}

// CompilePlan classifies q, resolves the method Solve would dispatch to
// (including the projection-simplification attempt on non-polynomial
// classes), and precompiles the method's static artifacts. It fails exactly
// where Solve would fail before touching any database: on unclassifiable
// queries and on rewriting-compilation errors.
func CompilePlan(q cq.Query) (*Plan, error) {
	cls, err := core.Classify(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Query:   q,
		Key:     cq.CanonicalKey(q),
		Class:   cls.Class,
		cls:     cls,
		execQ:   q,
		execCls: cls,
	}
	if !cls.Class.InP() {
		if q2, rewrite, rep := simplifyProjection(q); rep != nil {
			if cls2, err2 := core.Classify(q2); err2 == nil && cls2.Class.InP() {
				p.simplified = rep
				p.rewriteDB = rewrite
				p.execQ = q2
				p.execCls = cls2
			}
		}
	}
	switch p.execCls.Class {
	case core.ClassFO:
		if p.execCls.Graph == nil {
			// Cyclic hypergraph but safe: compile the Theorem 6 rewriting.
			p.Method = MethodSafeRewriting
			phi, err := fo.RewriteSafe(p.execQ)
			if err != nil {
				return nil, err
			}
			p.safePhi = phi
			if prog, err := fo.Compile(phi); err == nil {
				p.safeProg = prog
			}
		} else {
			p.Method = MethodFO
			prog, err := CompileFO(p.execQ)
			if err != nil {
				return nil, err
			}
			p.foProg = prog
		}
	case core.ClassPTimeTerminal:
		p.Method = MethodTerminal
	case core.ClassPTimeACk:
		p.Method = MethodACk
	case core.ClassPTimeCk:
		p.Method = MethodCk
	default:
		p.Method = MethodFalsifying
	}
	return p, nil
}

// Classification returns the full classification of the plan's query.
func (p *Plan) Classification() core.Classification { return p.cls }

// Solve decides db ∈ CERTAINTY(q) for the plan's query, mirroring Solve but
// with all per-query work already done.
func (p *Plan) Solve(d *db.DB) (Result, error) {
	v, err := p.SolveCtx(context.Background(), d, Options{})
	if err != nil {
		return Result{}, err
	}
	if v.Err != nil {
		return Result{}, v.Err
	}
	return v.Result, nil
}

// SolveCtx is the resource-governed execution of the plan, mirroring
// SolveCtx over the precompiled artifacts: same governor wiring, same panic
// containment, same graceful degradation on cut-off exponential searches,
// and byte-identical Verdicts. Traced solves record the same span tree as
// the uncompiled path minus the classify span (classification was paid at
// compile time), with a plan=compiled attribute on the root.
func (p *Plan) SolveCtx(ctx context.Context, d *db.DB, opts Options) (Verdict, error) {
	ctx, root := obs.StartSpan(ctx, "solve")
	root.SetAttr("plan", "compiled")
	g := govern.New(ctx, govern.Options{Budget: opts.Budget, Timeout: opts.Timeout, Fault: opts.Fault})
	defer g.Close()
	gctx := g.Attach()
	var v Verdict
	err := govern.Safe(func() error {
		var innerErr error
		v, innerErr = p.solveGoverned(gctx, g, d, opts)
		return innerErr
	})
	endSolveSpan(root, g, v, err)
	if err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// solveGoverned mirrors solveGoverned over the plan's precompiled
// simplification decision.
func (p *Plan) solveGoverned(ctx context.Context, g *govern.Governor, d *db.DB, opts Options) (Verdict, error) {
	if p.rewriteDB != nil {
		d2, err := p.rewriteDB(d)
		if err != nil {
			return Verdict{}, err
		}
		v, err := dispatchGoverned(ctx, g, p.execQ, d2, p.execCls, opts, p)
		if err != nil {
			return Verdict{}, err
		}
		v.Result.Classification = p.cls
		v.Result.Simplified = p.simplified
		v.Result.SimplifiedClass = p.execCls.Class
		return v, nil
	}
	return dispatchGoverned(ctx, g, p.execQ, d, p.execCls, opts, p)
}
