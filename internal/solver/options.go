package solver

import (
	"context"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Option configures a Solve call. Options replace the former proliferation
// of entry points (Solve/SolveCtx/compiled-plan/parallel variants) with one
// signature; the old names remain as thin wrappers over this one.
type Option func(*config)

// config is the resolved option set of one Solve call.
type config struct {
	opts    Options           // limits + degradation knobs (the legacy Options struct)
	shards  int               // 0 = monolithic; >0 = cap data shards per component; <0 = auto
	plans   PlanSource        // nil = compile per call (or run the uncompiled path)
	observe func(BatchResult) // SolveBatch streaming callback; nil = none
	memo    *ShardMemo        // nil = no per-shard verdict memoization
}

// PlanSource supplies compiled plans; *plan.Cache implements it. Solve uses
// it to amortize classification and rewriting compilation across calls.
type PlanSource interface {
	Get(ctx context.Context, q cq.Query) (*Plan, error)
}

// WithBudget caps the governor's search steps (0 = unlimited).
func WithBudget(n int64) Option {
	return func(c *config) { c.opts.Budget = n }
}

// WithDeadline bounds the solve's wall-clock time (0 = no deadline). The
// deadline covers the whole solve: under sharding it is shared by all
// shards, not split — only the step budget is divided.
func WithDeadline(d time.Duration) Option {
	return func(c *config) { c.opts.Timeout = d }
}

// WithShards enables component-partitioned solving with at most n data
// shards per query component (see internal/shard). n < 0 selects an
// automatic shard count (GOMAXPROCS); n == 0 (the default) solves the
// instance monolithically. Sharded and monolithic solves return identical
// conclusive verdicts; sharding changes only how the work is scheduled.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShardMemo consults (and fills) the given per-shard verdict memo
// during sharded solving: shards whose content fingerprints hit the memo
// reuse their conclusive verdicts instead of being re-solved. Effective
// only together with WithShards (the memo works at shard granularity);
// conclusive verdicts are unchanged — see ShardMemo.
func WithShardMemo(m *ShardMemo) Option {
	return func(c *config) { c.memo = m }
}

// WithPlanCache routes plan compilation through ps (typically a *plan.Cache)
// so repeated queries share one classification and compiled rewriting.
func WithPlanCache(ps PlanSource) Option {
	return func(c *config) { c.plans = ps }
}

// WithDegradeSamples caps the Monte-Carlo samples drawn after an
// exponential-path cutoff; 0 means the solver default (1024), negative
// disables the degradation pass.
func WithDegradeSamples(n int) Option {
	return func(c *config) { c.opts.DegradeSamples = n }
}

// WithSampleSeed seeds the degradation sampler (deterministic per seed).
func WithSampleSeed(seed int64) Option {
	return func(c *config) { c.opts.SampleSeed = seed }
}

// WithSampleTimeout bounds the degradation sampling pass (0 = default
// 250ms).
func WithSampleTimeout(d time.Duration) Option {
	return func(c *config) { c.opts.SampleTimeout = d }
}

// WithObserver streams batch progress: SolveBatch invokes fn once per item,
// as that item completes, before the batch call returns. Calls are
// serialized (fn needs no locking) but arrive in completion order, not item
// order — use BatchResult.Index to reorder. Solve ignores this option.
func WithObserver(fn func(BatchResult)) Option {
	return func(c *config) { c.observe = fn }
}

// WithFault installs a fault-injection hook on the governor (testing).
func WithFault(f func(step int64) error) Option {
	return func(c *config) { c.opts.Fault = f }
}

// WithOptions applies a whole legacy Options struct at once; the bridge the
// deprecated wrappers use.
func WithOptions(opts Options) Option {
	return func(c *config) { c.opts = opts }
}

// newConfig folds opts into a config.
func newConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// Solve decides CERTAINTY(q) on d under ctx. It is the package's unified
// entry point: the zero-option call is SolveCtx with no limits, and the
// functional options add step budgets (WithBudget), wall-clock deadlines
// (WithDeadline), compiled-plan reuse (WithPlanCache), and
// component-partitioned parallel execution (WithShards). Conclusive
// verdicts are identical across every option combination; options change
// resource limits and scheduling, never answers.
func Solve(ctx context.Context, q cq.Query, d *db.DB, opts ...Option) (Verdict, error) {
	cfg := newConfig(opts)
	if cfg.shards != 0 {
		return solveSharded(ctx, q, d, cfg)
	}
	if cfg.plans != nil {
		p, err := cfg.plans.Get(ctx, q)
		if err != nil {
			return Verdict{}, err
		}
		return p.SolveCtx(ctx, d, cfg.opts)
	}
	return SolveCtx(ctx, q, d, cfg.opts)
}
