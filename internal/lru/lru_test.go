package lru

import "testing"

func TestEvictionOrder(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should be present")
	}
	// 2 is now least recently used; inserting 3 must evict it.
	if evicted := c.Put(3, "c"); !evicted {
		t.Fatal("inserting over capacity must evict")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Peek(1); !ok {
		t.Fatal("1 should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestUpdateDoesNotEvict(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	if evicted := c.Put(1, 11); evicted {
		t.Fatal("updating an existing key must not evict")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("Get(1) = %d, want 11", v)
	}
}

func TestStats(t *testing.T) {
	c := New[int, int](1)
	c.Get(1)    // miss
	c.Put(1, 1) // fill
	c.Get(1)    // hit
	c.Put(2, 2) // evict 1
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Evictions != 1 || s.Len != 1 || s.Cap != 1 {
		t.Fatalf("unexpected stats %+v", s)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want floor of 1", c.Cap())
	}
	c.Put(1, 1)
	if _, ok := c.Get(1); !ok {
		t.Fatal("a capacity-1 cache must still hold one entry")
	}
}

func TestDelete(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1)
	if !c.Delete(1) {
		t.Fatal("Delete of present key must report true")
	}
	if c.Delete(1) {
		t.Fatal("Delete of absent key must report false")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}
