package lru

import "testing"

// PutEvicted exists so secondary indexes (the shard memo's block index) can
// unindex exactly the entry a capacity eviction dropped.
func TestPutEvicted(t *testing.T) {
	c := New[string, int](2)

	if k, v, ok := c.PutEvicted("a", 1); ok {
		t.Fatalf("under-cap insert evicted (%q, %d)", k, v)
	}
	if k, v, ok := c.PutEvicted("b", 2); ok {
		t.Fatalf("at-cap insert evicted (%q, %d)", k, v)
	}

	// Updating an existing key never evicts, and stores the new value.
	if k, v, ok := c.PutEvicted("a", 10); ok {
		t.Fatalf("update evicted (%q, %d)", k, v)
	}
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = (%d, %v), want (10, true)", v, ok)
	}

	// "a" was just touched, so "b" is the LRU entry and must be returned.
	k, v, ok := c.PutEvicted("c", 3)
	if !ok || k != "b" || v != 2 {
		t.Fatalf("PutEvicted(c) = (%q, %d, %v), want (b, 2, true)", k, v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted key still present")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("Stats = %+v, want 1 eviction, len 2", st)
	}
}

// Put delegates to PutEvicted; their eviction reporting must agree.
func TestPutMatchesPutEvicted(t *testing.T) {
	c := New[int, int](1)
	if c.Put(1, 1) {
		t.Fatal("first Put reported eviction")
	}
	if !c.Put(2, 2) {
		t.Fatal("over-cap Put did not report eviction")
	}
}
