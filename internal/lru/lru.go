// Package lru implements a small, allocation-light, generics-based LRU map
// used to bound every memoization layer in the serving stack: the
// classification cache (internal/core), the compiled plan cache
// (internal/plan), and the verdict cache (internal/server). Bounding these
// caches is a robustness requirement, not just a memory optimization: an
// adversarial stream of distinct queries must not grow server memory
// without limit.
//
// The zero Cache is not ready; call New. Cache is NOT safe for concurrent
// use — callers wrap it in their own lock so they can combine the lookup
// with their own bookkeeping (singleflight, counters) under one critical
// section.
package lru

import "container/list"

// Cache is a bounded map with least-recently-used eviction.
type Cache[K comparable, V any] struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element

	hits, misses, evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most capacity entries. Capacities
// below 1 are raised to 1 (a cache that can hold nothing would turn every
// Get into a miss and every Put into an immediate eviction, which no caller
// wants silently).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for key without touching recency or counters.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key, marking it most recently used, and evicts the
// least recently used entry if the cache is over capacity. It reports
// whether an eviction happened.
func (c *Cache[K, V]) Put(key K, val V) (evicted bool) {
	_, _, evicted = c.PutEvicted(key, val)
	return evicted
}

// PutEvicted is Put for callers that maintain a secondary index over the
// cache's entries (the shard memo's block → fingerprint map): on eviction it
// returns the evicted key and value so the caller can unindex them in the
// same critical section, keeping the index exactly as bounded as the cache.
func (c *Cache[K, V]) PutEvicted(key K, val V) (K, V, bool) {
	var zeroK K
	var zeroV V
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		return zeroK, zeroV, false
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() <= c.cap {
		return zeroK, zeroV, false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	e := oldest.Value.(*entry[K, V])
	delete(c.items, e.key)
	c.evictions++
	return e.key, e.val, true
}

// Delete removes key, reporting whether it was present.
func (c *Cache[K, V]) Delete(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of entries currently held.
func (c *Cache[K, V]) Len() int { return c.ll.Len() }

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats is a snapshot of the cache's counters, serializable as the
// /statsz wire form.
type Stats struct {
	Len       int    `json:"len"`
	Cap       int    `json:"cap"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a snapshot of size and counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{Len: c.ll.Len(), Cap: c.cap, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
