package certainty

// PR 3 performance benchmarks: seed-vs-indexed pairs for the optimization
// layers added in this PR. Each pair runs the retained pre-index baseline
// next to the production path on identical instances so a regression in
// either the index, the compiled FO program, or the plan layer shows up as
// a ratio change, not just an absolute drift. cmd/certbench -json runs the
// same matrix and records it in BENCH_pr3.json.

import (
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/solver"
)

var pr3FOScales = []int{8, 32, 128}

func pr3FOInstance(b testing.TB, n int) (cq.Query, *db.DB) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
	d.Digest() // warm the structural index outside the timed region
	return q, d
}

// BenchmarkFOSeed is the pre-index FO recursion retained as the baseline
// oracle: block lists recomputed per step, fresh valuation maps.
func BenchmarkFOSeed(b *testing.B) {
	for _, n := range pr3FOScales {
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			q, d := pr3FOInstance(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainFOBaseline(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFOIndexed is the production path: compiled FO program over the
// memoized block index with pooled valuations.
func BenchmarkFOIndexed(b *testing.B) {
	for _, n := range pr3FOScales {
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			q, d := pr3FOInstance(b, n)
			prog, err := solver.CompileFO(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.CertainIndexed(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTerminalIndexed: Theorem 3 over the relation-level index views.
func BenchmarkTerminalIndexed(b *testing.B) {
	q := gen.TerminalPairsQuery(2, true)
	for _, emb := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("emb=%d", emb), func(b *testing.B) {
			d := gen.RandomDB(q, gen.Config{Embeddings: emb, Noise: 2, Domain: 3}, int64(emb))
			d.Digest()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainTerminal(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkACkSequential / BenchmarkACkParallel: Theorem 4 graph marking,
// sequential vs component-parallel fan-out (workers clamped to component
// count).
func benchACk(b *testing.B, parallel bool) {
	q := cq.ACk(3)
	shape, ok := core.MatchCycleShape(q, true)
	if !ok {
		b.Fatal("AC(3) shape match failed")
	}
	for _, comps := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("comps=%d", comps), func(b *testing.B) {
			d := gen.CycleDB(gen.CycleConfig{K: 3, Components: comps, Width: 2, EncodeAll: true})
			d.Digest()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if parallel {
					_, err = solver.CertainACkParallel(q, shape, d, 0)
				} else {
					_, err = solver.CertainACk(q, shape, d)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkACkSequential(b *testing.B) { benchACk(b, false) }
func BenchmarkACkParallel(b *testing.B)   { benchACk(b, true) }

// BenchmarkFalsifyingSearch: the coNP falsifying-repair search on
// Monotone-SAT-encoded q0 instances (hard by Theorem 2).
func BenchmarkFalsifyingSearch(b *testing.B) {
	q := cq.Q0()
	for _, vars := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			f := gen.RandomMonotoneSAT(vars, 5*vars, 3, int64(100*vars))
			d := gen.MonotoneSATQ0DB(f)
			d.Digest()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solver.CertainByFalsifying(q, d)
			}
		})
	}
}

// BenchmarkSolvePlan: end-to-end Solve through a compiled plan vs the
// per-call classify+dispatch path.
func BenchmarkSolvePerCall(b *testing.B) {
	q, d := pr3FOInstance(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveResult(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePlan(b *testing.B) {
	q, d := pr3FOInstance(b, 32)
	p, err := solver.CompilePlan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(d); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFOIndexedAllocRegression pins the allocation win of the indexed FO
// path: on the largest benchmark scale the compiled program must allocate
// strictly less than the seed baseline, and stay under an absolute ceiling
// generous enough to absorb runtime jitter but far below the baseline's
// hundreds of allocations per decision.
func TestFOIndexedAllocRegression(t *testing.T) {
	n := pr3FOScales[len(pr3FOScales)-1]
	q, d := pr3FOInstance(t, n)
	prog, err := solver.CompileFO(q)
	if err != nil {
		t.Fatal(err)
	}

	baseline := testing.AllocsPerRun(20, func() {
		if _, err := solver.CertainFOBaseline(q, d); err != nil {
			t.Fatal(err)
		}
	})
	indexed := testing.AllocsPerRun(20, func() {
		if _, err := prog.CertainIndexed(q, d); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op at emb=%d: baseline=%.0f indexed=%.0f", n, baseline, indexed)
	if indexed >= baseline {
		t.Fatalf("indexed FO allocates %.0f/op, not below baseline %.0f/op", indexed, baseline)
	}
	const ceiling = 120 // baseline sits in the hundreds at this scale
	if indexed > ceiling {
		t.Fatalf("indexed FO allocates %.0f/op, above the %d ceiling", indexed, ceiling)
	}
}
