package certainty

// Benchmarks regenerating the paper's artifacts, one per experiment of
// DESIGN.md (E1–E9 have testing.B counterparts here; E10 is the frontier
// chart printed by cmd/certbench). The paper is a theory paper, so the
// quantities of interest are scaling *shapes*: the Theorem 1/3/4
// algorithms must scale polynomially while brute-force repair enumeration
// and the falsifying search on coNP-hard queries grow exponentially.

import (
	"fmt"
	"math/big"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/reduction"
	"github.com/cqa-go/certainty/internal/solver"
)

// BenchmarkE1Conference: the Fig. 1 instance end to end (classify + solve).
func BenchmarkE1Conference(b *testing.B) {
	q := ConferenceQuery()
	d := ConferenceDB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := solver.SolveResult(q, d)
		if err != nil || res.Certain {
			b.Fatal("unexpected result")
		}
	}
}

// BenchmarkE2AttackGraph: attack graph construction and classification of
// the Fig. 2 query.
func BenchmarkE2AttackGraph(b *testing.B) {
	q := Q1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cls, err := core.Classify(q)
		if err != nil || cls.Class != core.ClassCoNPComplete {
			b.Fatal("unexpected classification")
		}
	}
}

// BenchmarkE3Reduction: the Theorem 2 construction (polynomial) per input
// size.
func BenchmarkE3Reduction(b *testing.B) {
	red, err := reduction.NewTheorem2(Q1())
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 16, 32} {
		d0 := gen.Q0DB(n, 2, 3, int64(n))
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := red.Apply(d0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3FalsifyingSearch: the exponential-worst-case search on q0 on
// Monotone-3SAT-encoded instances (the coNP side of the frontier). "sat"
// instances have falsifying repairs; "unsat" ones force an exhaustive
// certainty proof.
func BenchmarkE3FalsifyingSearch(b *testing.B) {
	q := Q0()
	for _, n := range []int{8, 12, 16} {
		for _, ratio := range []int{5, 8} {
			f := gen.RandomMonotoneSAT(n, ratio*n, 3, int64(n*100+ratio))
			d := gen.MonotoneSATQ0DB(f)
			name := fmt.Sprintf("sat/vars=%d", n)
			if ratio == 8 {
				name = fmt.Sprintf("unsat/vars=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solver.CertainByFalsifying(q, d)
				}
			})
		}
	}
}

// BenchmarkE4Terminal: the Theorem 3 polynomial algorithm vs brute force
// on the Fig. 4-style query — the shape comparison of the paper's central
// tractability result.
func BenchmarkE4Terminal(b *testing.B) {
	q := TerminalCyclesQuery()
	base := q.Without(0)
	for _, n := range []int{2, 4, 8, 16} {
		d := gen.RandomDB(base, gen.Config{Embeddings: n, Noise: 2, Domain: 2}, int64(n))
		b.Run(fmt.Sprintf("thm3/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainTerminal(base, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		if d.NumRepairs().Cmp(big.NewInt(100_000)) <= 0 {
			b.Run(fmt.Sprintf("brute/emb=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solver.BruteForce(base, d)
				}
			})
		}
	}
}

// BenchmarkE5ACk: the Theorem 4 graph-marking algorithm across k and
// instance size; repairs grow doubly exponentially while the algorithm
// stays polynomial.
func BenchmarkE5ACk(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		q := ACk(k)
		shape, ok := core.MatchCycleShape(q, true)
		if !ok {
			b.Fatal("shape")
		}
		for _, comps := range []int{4, 16, 64} {
			d := gen.CycleDB(gen.CycleConfig{K: k, Components: comps, Width: 2, EncodeAll: true})
			b.Run(fmt.Sprintf("k=%d/comps=%d", k, comps), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := solver.CertainACk(q, shape, d); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE5Figure6: the exact Fig. 6 instance.
func BenchmarkE5Figure6(b *testing.B) {
	q := ACk(3)
	shape, _ := core.MatchCycleShape(q, true)
	d := Figure6DB()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		certain, err := solver.CertainACk(q, shape, d)
		if err != nil || certain {
			b.Fatal("Fig. 6 must be falsifiable")
		}
	}
}

// BenchmarkE6Ck: direct C(k) decision vs the Lemma 9 completion route.
func BenchmarkE6Ck(b *testing.B) {
	for _, k := range []int{2, 3} {
		q := Ck(k)
		aq := ACk(k)
		shape, _ := core.MatchCycleShape(q, false)
		shapeA, _ := core.MatchCycleShape(aq, true)
		d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 2, Domain: 3}, int64(k))
		b.Run(fmt.Sprintf("direct/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainCk(q, shape, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lemma9/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				completed, err := reduction.Lemma9(aq, q, d)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := solver.CertainACk(aq, shapeA, completed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Rewriting: constructing and evaluating the certain FO
// rewriting (Theorem 1) vs brute force.
func BenchmarkE7Rewriting(b *testing.B) {
	q := MustParseQuery("R(x | y), S(y | z)")
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fo.RewriteAcyclic(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	phi, err := fo.RewriteAcyclic(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{5, 10, 20} {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		b.Run(fmt.Sprintf("eval/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fo.Eval(phi, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("recursion/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainFO(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		if d.NumRepairs().Cmp(big.NewInt(50_000)) <= 0 {
			b.Run(fmt.Sprintf("brute/emb=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solver.BruteForce(q, d)
				}
			})
		}
	}
}

// BenchmarkE8Probability: safe-plan evaluation (FP) vs world enumeration
// (exponential) for PROBABILITY(q).
func BenchmarkE8Probability(b *testing.B) {
	q := ConferenceQuery()
	for _, n := range []int{2, 4, 8} {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: 2, Domain: 3}, int64(n))
		p := prob.Uniform(d)
		b.Run(fmt.Sprintf("safeplan/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prob.Probability(q, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		if d.NumBlocks() <= 16 {
			b.Run(fmt.Sprintf("worlds/emb=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prob.ProbabilityByWorlds(q, p)
				}
			})
		}
	}
}

// BenchmarkE9Counting: ♯CERTAINTY by enumeration vs the uniform safe plan.
func BenchmarkE9Counting(b *testing.B) {
	q := ConferenceQuery()
	for _, n := range []int{2, 4, 6} {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: 2, Domain: 3}, int64(7*n))
		b.Run(fmt.Sprintf("brute/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prob.CountSatisfyingRepairs(q, d)
			}
		})
		b.Run(fmt.Sprintf("uniform/emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prob.CountViaUniform(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Microbenchmarks for the substrates.

func BenchmarkPurify(b *testing.B) {
	q := ACk(3)
	d := gen.CycleDB(gen.CycleConfig{K: 3, Components: 16, Width: 2, EncodeAll: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.Purify(q, d)
	}
}

func BenchmarkEvalEmbeddings(b *testing.B) {
	q := MustParseQuery("R(x | y), S(y | z), T(z | w)")
	d := gen.RandomDB(q, gen.Config{Embeddings: 50, Noise: 50, Domain: 20}, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engine.Eval(q, d)
	}
}

func BenchmarkJoinTree(b *testing.B) {
	q := TerminalCyclesQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := jointree.Build(q, jointree.TieBreakLex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepairEnumeration(b *testing.B) {
	d := gen.RandomDB(Q0(), gen.Config{Embeddings: 6, Noise: 4, Domain: 3}, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		d.EachRepair(func([]Fact) bool {
			count++
			return true
		})
	}
}

// BenchmarkClassifyScaling: the effective method's cost as the query grows
// (the paper notes attack graphs are computable in quadratic time).
func BenchmarkClassifyScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		q := gen.TerminalPairsQuery(n, true)
		b.Run(fmt.Sprintf("pairs=%d/atoms=%d", n, q.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Classify(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertainAnswers: free-variable certain answers with the FO
// rewriting fast path vs per-candidate dispatch.
func BenchmarkCertainAnswers(b *testing.B) {
	q := MustParseQuery("R(x | y), S(y | z)")
	for _, n := range []int{5, 20} {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CertainAnswers(q, []string{"x"}, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11OpenCase: the exact search on the open-class query — the
// empirical side of Conjecture 1.
func BenchmarkE11OpenCase(b *testing.B) {
	q := gen.OpenCaseQuery()
	for _, n := range []int{8, 32} {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: 1 + n/2}, int64(n))
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.CertainByFalsifying(q, d)
			}
		})
	}
}

// BenchmarkE12OrderingAblation: fail-first vs static block ordering.
func BenchmarkE12OrderingAblation(b *testing.B) {
	q := Q0()
	f := gen.RandomMonotoneSAT(8, 24, 2, 803)
	d := gen.MonotoneSATQ0DB(f)
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.FalsifyingRepair(q, d)
		}
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.FalsifyingRepairStatic(q, d)
		}
	})
}

// BenchmarkSafeRewriting: Theorem 6 construction and evaluation on the
// cyclic-hypergraph safe query.
func BenchmarkSafeRewriting(b *testing.B) {
	q := MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	b.Run("construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fo.RewriteSafe(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	phi, err := fo.RewriteSafe(q)
	if err != nil {
		b.Fatal(err)
	}
	d := gen.RandomDB(q, gen.Config{Embeddings: 10, Noise: 5, Domain: 5}, 1)
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fo.Eval(phi, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompiledRewriting: interpreted vs compiled evaluation of the
// certain rewriting (the compiled form pays off on repeated evaluation).
func BenchmarkCompiledRewriting(b *testing.B) {
	q := MustParseQuery("R(x | y), S(y | z)")
	phi, err := fo.RewriteAcyclic(q)
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := fo.Compile(phi)
	if err != nil {
		b.Fatal(err)
	}
	d := gen.RandomDB(q, gen.Config{Embeddings: 10, Noise: 10, Domain: 10}, 7)
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fo.Eval(phi, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Eval(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}
