package certainty

// PR 8 performance benchmarks: the interned data plane. Each family extends
// an existing seed/indexed pair with an interned column running the same
// decision on the same instance over dense uint32 ids and columnar
// relations, so the speedup of this PR is a within-run ratio rather than a
// cross-machine absolute. cmd/certbench -json runs the same matrix and
// records it in BENCH_pr8.json next to the PR 5 baseline.

import (
	"context"
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/solver"
)

// BenchmarkFOInterned completes the FO triple (seed, indexed, interned):
// the compiled program's interned schedule over block-offset probes with a
// pooled uint32 environment.
func BenchmarkFOInterned(b *testing.B) {
	for _, n := range pr3FOScales {
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			q, d := pr3FOInstance(b, n)
			d.Interned() // build the columnar view outside the timed region
			prog, err := solver.CompileFO(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Certain(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var pr8EngineScales = []int{8, 32, 128}

func pr8EngineInstance(b testing.TB, n int) (cq.Query, *db.DB) {
	q := cq.MustParseQuery("R(x | y), S(y | z), T(z | w)")
	d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
	d.Digest()
	return q, d
}

func benchEngineEnum(b *testing.B, each func(cq.Query, *db.DB, func(cq.Valuation) bool) bool) {
	for _, n := range pr8EngineScales {
		b.Run(fmt.Sprintf("emb=%d", n), func(b *testing.B) {
			q, d := pr8EngineInstance(b, n)
			d.Interned()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count := 0
				each(q, d, func(cq.Valuation) bool {
					count++
					return true
				})
				if count == 0 && n > 4 {
					b.Fatal("instance generated no embeddings")
				}
			}
		})
	}
}

// BenchmarkEngineEnumIndexed enumerates every embedding of a three-atom
// chain on the string-indexed plane (map-backed valuations, posting lists
// of facts).
func BenchmarkEngineEnumIndexed(b *testing.B) {
	benchEngineEnum(b, engine.EachEmbeddingIndexed)
}

// BenchmarkEngineEnumInterned is the same enumeration on the interned plane:
// sorted-posting intersection over uint32 fact indices, slot-compiled
// valuations materialized only at yield.
func BenchmarkEngineEnumInterned(b *testing.B) {
	benchEngineEnum(b, engine.EachEmbedding)
}

// BenchmarkSafeRewritingIndexed / Interned: the Theorem 6 safe rewriting of
// a 3-cycle join, evaluated through the compiled closure tree on each plane.
func benchSafeRewriting(b *testing.B, interned bool) {
	q := cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	phi, err := fo.RewriteSafe(q)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := fo.Compile(phi)
	if err != nil {
		b.Fatal(err)
	}
	d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 3, Domain: 3}, 7)
	d.Digest()
	d.Interned()
	fo.SetInterned(interned)
	defer fo.SetInterned(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Eval(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSafeRewritingIndexed(b *testing.B)  { benchSafeRewriting(b, false) }
func BenchmarkSafeRewritingInterned(b *testing.B) { benchSafeRewriting(b, true) }

// TestFOInternedAllocRegression pins the headline property of the interned
// data plane: a warm FO decision allocates NOTHING. The governor, the
// columnar view, and the scratch pools are set up outside the measured
// region — exactly the steady state of a server solving the same plan over
// a hosted database.
func TestFOInternedAllocRegression(t *testing.T) {
	n := pr3FOScales[len(pr3FOScales)-1]
	q, d := pr3FOInstance(t, n)
	prog, err := solver.CompileFO(q)
	if err != nil {
		t.Fatal(err)
	}
	d.Interned()
	g := govern.New(context.Background(), govern.Options{})
	defer g.Close()
	ctx := g.Attach()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := prog.CertainCtx(ctx, q, d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("interned FO path allocates %.1f/op, want 0", allocs)
	}
}

// TestEngineEvalInternedAllocRegression bounds the engine's boolean
// evaluation (the terminal/C(k) building block) on the interned plane. The
// Eval API compiles its query per call, so the floor is the slot-compile of
// a three-atom chain — a small constant independent of the data — while the
// search itself runs out of pooled scratch. The string plane allocates per
// visited candidate, so its count grows with the instance.
func TestEngineEvalInternedAllocRegression(t *testing.T) {
	q, d := pr8EngineInstance(t, 32)
	d.Interned()
	interned := testing.AllocsPerRun(50, func() {
		engine.Eval(q, d)
	})
	indexed := testing.AllocsPerRun(50, func() {
		engine.EvalIndexed(q, d)
	})
	t.Logf("allocs/op: interned=%.0f indexed=%.0f", interned, indexed)
	const ceiling = 24 // query compile only; the search allocates nothing
	if interned > ceiling {
		t.Fatalf("interned engine Eval allocates %.0f/op, above the %d compile-only ceiling", interned, ceiling)
	}
	if interned >= indexed {
		t.Fatalf("interned engine Eval allocates %.0f/op, not below the string plane's %.0f/op", interned, indexed)
	}
}
