package certainty

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the doc-comment example end to end.
func TestQuickstartFlow(t *testing.T) {
	q, err := ParseQuery("C(x, y | 'Rome'), R(x | 'A')")
	if err != nil {
		t.Fatal(err)
	}
	d := ConferenceDB()
	res, err := Solve(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Error("Fig. 1: not certain (3 of 4 repairs)")
	}
	if res.Method != MethodFO {
		t.Errorf("method = %v", res.Method)
	}
	cls, err := Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != ClassFO || !cls.Class.InP() {
		t.Errorf("class = %v", cls.Class)
	}
	phi, err := RewriteFO(q)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalFormula(phi, d)
	if err != nil {
		t.Fatal(err)
	}
	if ok != res.Certain {
		t.Error("rewriting disagrees with solver")
	}
	sql, err := RewriteSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "EXISTS") {
		t.Errorf("SQL = %s", sql)
	}
}

func TestFacadeConstruction(t *testing.T) {
	q := NewQuery(
		NewAtom("R", 1, Var("x"), Var("y")),
		NewAtom("S", 1, Var("y"), Const("c")),
	)
	if q.Len() != 2 || q.HasSelfJoin() {
		t.Error("query construction")
	}
	d := NewDB()
	if err := d.Add(NewFact("R", 1, "a", "b")); err != nil {
		t.Fatal(err)
	}
	if !Eval(MustParseQuery("R(x | y)"), d) {
		t.Error("Eval via facade")
	}
	if !IsQueryAcyclic(q) {
		t.Error("acyclicity via facade")
	}
	if g, err := AttackGraphOf(q); err != nil || g.Len() != 2 {
		t.Errorf("attack graph via facade: %v", err)
	}
}

func TestFacadeFamilies(t *testing.T) {
	if Q0().Len() != 2 || Q1().Len() != 4 || Ck(3).Len() != 3 || ACk(3).Len() != 4 {
		t.Error("family sizes")
	}
	if TerminalCyclesQuery().Len() != 7 || ConferenceQuery().Len() != 2 {
		t.Error("family sizes")
	}
	if Figure6DB().Len() != 12 || ConferenceDB().Len() != 6 {
		t.Error("database sizes")
	}
}

func TestFacadeProbability(t *testing.T) {
	d := ConferenceDB()
	q := ConferenceQuery()
	if !IsSafe(q) {
		t.Fatal("conference query is safe")
	}
	pr, err := Probability(q, Uniform(d))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("Pr = %v, want 3/4", pr)
	}
	if ProbabilityByWorlds(q, Uniform(d)).Cmp(pr) != 0 {
		t.Error("world enumeration disagrees")
	}
	if got := CountSatisfyingRepairs(q, d); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("count = %v", got)
	}
	if got, err := CountViaUniform(q, d); err != nil || got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("count via uniform = %v, %v", got, err)
	}
}

func TestFacadePurifyAndReductions(t *testing.T) {
	q := MustParseQuery("R(x | y), S(y | x)")
	d := MustParseDB("R(a | b), S(b | a), S(b | c)")
	if p := Purify(q, d); p.Len() != 0 {
		t.Errorf("Example 1 purifies to empty, got %d facts", p.Len())
	}
	r, err := NewTheorem2Reduction(Q1())
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Apply(MustParseDB("R0(a | b), S0(b, z | a)"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("reduction image should be nonempty")
	}
	comp, err := CompleteAllKey(ACk(2), Ck(2), MustParseDB("R1(a | b), R2(b | a)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.FactsOf("S2")) != 4 { // |D|^2 = 4
		t.Errorf("completion size = %d", len(comp.FactsOf("S2")))
	}
}

func TestFacadeClassifyCatalog(t *testing.T) {
	cases := map[string]Class{
		"R(x | y), S(y | z)": ClassFO,
	}
	for s, want := range cases {
		cls, err := Classify(MustParseQuery(s))
		if err != nil {
			t.Fatal(err)
		}
		if cls.Class != want {
			t.Errorf("%s: %v", s, cls.Class)
		}
	}
	checks := []struct {
		q    Query
		want Class
	}{
		{Q1(), ClassCoNPComplete},
		{Ck(2), ClassPTimeTerminal},
		{Ck(4), ClassPTimeCk},
		{ACk(4), ClassPTimeACk},
		{TerminalCyclesQuery(), ClassPTimeTerminal},
	}
	for _, c := range checks {
		cls, err := Classify(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if cls.Class != c.want {
			t.Errorf("%s: %v, want %v", c.q, cls.Class, c.want)
		}
	}
}

func TestFacadeFalsifyingRepair(t *testing.T) {
	q := ConferenceQuery()
	d := ConferenceDB()
	rep, found := FalsifyingRepair(q, d)
	if !found || len(rep) != d.NumBlocks() {
		t.Errorf("falsifying repair: found=%v len=%d", found, len(rep))
	}
	if !CertainBruteForce(MustParseQuery("R(x | y)"), MustParseDB("R(a | b)")) {
		t.Error("singleton certain")
	}
	if len(Embeddings(q, d)) == 0 {
		t.Error("embeddings exist")
	}
}

// TestFacadeSweep exercises the remaining facade surface.
func TestFacadeSweep(t *testing.T) {
	d := ConferenceDB()

	// Parallel answers agree with sequential.
	q := MustParseQuery("R(x | r)")
	seq, err := CertainAnswers(q, []string{"x"}, d)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CertainAnswersParallel(q, []string{"x"}, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Certain) != len(seq.Certain) {
		t.Errorf("parallel answers differ: %v vs %v", par.Certain, seq.Certain)
	}

	// Probabilistic ranking.
	ranked, err := AnswersWithProbabilities(q, []string{"x", "r"}, d)
	if err != nil || len(ranked) != 3 {
		t.Fatalf("ranked = %v, %v", ranked, err)
	}
	if ranked[0].Pr.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("top answer should have probability 1: %v", ranked[0])
	}

	// Statistical screen.
	certain, witness := EstimateCertain(ConferenceQuery(), d, 200, 1)
	if certain || witness == nil {
		t.Error("sampling should refute certainty of the Rome query")
	}

	// Free-variable rewriting and EvalFormulaWith.
	phi, err := RewriteFOFree(q, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalFormulaWith(phi, d, Valuation{"x": "PODS"})
	if err != nil || ok {
		// R(x | r) with r existential: certain for PODS? The block has one
		// fact R(PODS,A), so yes certain.
		if err != nil {
			t.Fatal(err)
		}
	}

	// Theorem 6 rewriting via the facade.
	if _, err := RewriteSafe(MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")); err != nil {
		t.Errorf("RewriteSafe: %v", err)
	}

	// Families and misc helpers.
	if TerminalPairsQuery(2, true).Len() != 5 {
		t.Error("TerminalPairsQuery")
	}
	if OpenCaseQuery().Len() != 3 {
		t.Error("OpenCaseQuery")
	}
	if !IsQueryAcyclic(MustParseQuery("R(x | y)")) || IsQueryAcyclic(Ck(3)) {
		t.Error("IsQueryAcyclic")
	}
	if Var("x").IsConst || !Const("c").IsConst {
		t.Error("term constructors")
	}
	if NewAtom("R", 1, Var("x")).Rel != "R" {
		t.Error("NewAtom")
	}
	if NewFact("R", 1, "a").Rel != "R" {
		t.Error("NewFact")
	}
	p := NewProbDB()
	if err := p.Add(NewFact("R", 1, "a", "b"), big.NewRat(1, 2)); err != nil {
		t.Error(err)
	}
	if ProbabilityByWorlds(MustParseQuery("R(x | y)"), p).Cmp(big.NewRat(1, 2)) != 0 {
		t.Error("ProbabilityByWorlds via facade")
	}
	if got := CountSatisfyingRepairs(ConferenceQuery(), d); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("CountSatisfyingRepairs = %v", got)
	}
	g, err := AttackGraphOf(Q1())
	if err != nil || g.Len() != 4 {
		t.Errorf("AttackGraphOf: %v %v", g, err)
	}
	if !Eval(ConferenceQuery(), d) {
		t.Error("Eval via facade")
	}
	if len(Embeddings(ConferenceQuery(), d)) == 0 {
		t.Error("Embeddings via facade")
	}
}

func TestFacadeSweep2(t *testing.T) {
	d := ConferenceDB()
	cache := NewClassificationCache()
	if _, err := cache.Classify(ConferenceQuery()); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Error("cache should hold one entry")
	}
	canon, _ := CanonicalizeQuery(MustParseQuery("S(y | x), R(x | y)"))
	if canon.Atoms[0].Rel != "R" {
		t.Errorf("canonical atom order: %s", canon)
	}
	p := RandomBID(d, 1)
	if p.DB().Len() != d.Len() {
		t.Error("RandomBID should cover all facts")
	}
	if got := CountSatisfyingDecomposed(ConferenceQuery(), d); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("decomposed count = %v", got)
	}
	plan := ExplainPlan(ConferenceQuery(), d)
	if len(plan.Steps) != 2 {
		t.Errorf("plan = %v", plan)
	}
	phi, err := RewriteFO(ConferenceQuery())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := CompileFormula(phi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := compiled.Eval(d)
	if err != nil || got {
		t.Errorf("compiled eval = %v, %v (not certain expected)", got, err)
	}
}

func TestFacadeGovernedSolve(t *testing.T) {
	q := Q0()
	d := MustParseDB("R0(a | b), R0(a | c), S0(b, z | a), S0(c, z | a)")

	// Unlimited: agrees with Solve.
	v, err := SolveCtx(context.Background(), q, d, SolveOptions{})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	res, err := Solve(q, d)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if v.Outcome == OutcomeUnknown || v.Result.Certain != res.Certain {
		t.Fatalf("governed verdict %v/%v disagrees with Solve %v", v.Outcome, v.Result.Certain, res.Certain)
	}

	// A one-step budget on this coNP instance degrades to unknown with a
	// sampled estimate (the instance is certain, so no sampled falsifier).
	v, err = SolveCtx(context.Background(), q, d, SolveOptions{Budget: 1, DegradeSamples: 64})
	if err != nil {
		t.Fatalf("SolveCtx(budget): %v", err)
	}
	if v.Outcome != OutcomeUnknown {
		t.Fatalf("Outcome = %v, want unknown under a one-step budget", v.Outcome)
	}
	if v.Evidence == nil || v.Evidence.Samples == 0 {
		t.Fatal("unknown verdict missing the sampled estimate")
	}
}

func TestFacadeGovernedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Ten two-fact blocks and a query every repair satisfies: brute force
	// cannot stop early, so it crosses the cancellation poll interval.
	bruteDB := NewDB()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := bruteDB.Add(NewFact("R", 1, k, "a")); err != nil {
			t.Fatal(err)
		}
		if err := bruteDB.Add(NewFact("R", 1, k, "b")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := CertainBruteForceCtx(ctx, MustParseQuery("R(x | y)"), bruteDB); err == nil {
		t.Fatal("CertainBruteForceCtx ignored a canceled context")
	}

	// A large certain q0 ring: the falsifying search needs hundreds of
	// nodes, well past the poll interval.
	ringDB := NewDB()
	n := 61 // odd: the ring is certain, so the search must traverse it all
	for i := 0; i < n; i++ {
		xi, xn, zi := fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", (i+1)%n), fmt.Sprintf("z%d", i)
		for _, f := range []Fact{
			NewFact("R0", 1, xi, "A"),
			NewFact("R0", 1, xi, "B"),
			NewFact("S0", 2, "A", zi, xi),
			NewFact("S0", 2, "A", zi, xn),
			NewFact("S0", 2, "B", zi, xi),
			NewFact("S0", 2, "B", zi, xn),
		} {
			if err := ringDB.Add(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := FalsifyingRepairCtx(ctx, Q0(), ringDB); err == nil {
		t.Fatal("FalsifyingRepairCtx ignored a canceled context")
	}
}
