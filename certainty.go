// Package certainty decides certain answers to conjunctive queries on
// uncertain databases — relational databases whose primary keys need not
// hold — implementing Wijsen, "Charting the Tractability Frontier of
// Certain Conjunctive Query Answering" (PODS 2013, arXiv:1301.1003).
//
// An uncertain database groups key-equal facts into blocks; a repair picks
// exactly one fact per block. CERTAINTY(q) asks whether a Boolean
// conjunctive query q holds in every repair. For acyclic self-join-free
// queries the package classifies CERTAINTY(q) through the attack graph —
// first-order expressible, polynomial-time, or coNP-complete — and solves
// instances with the algorithm the classification licenses:
//
//	q, _ := certainty.ParseQuery("C(x, y | 'Rome'), R(x | 'A')")
//	d, _ := certainty.ParseDB("C(PODS, 2016 | Rome)\nC(PODS, 2016 | Paris)\nR(PODS | A)")
//	res, _ := certainty.Solve(q, d)      // res.Certain, res.Method
//	cls, _ := certainty.Classify(q)      // cls.Class, cls.Reason
//	phi, _ := certainty.RewriteFO(q)     // certain first-order rewriting
//	sql, _ := certainty.RewriteSQL(q)    // the same rewriting as SQL
//
// Section 7 of the paper (probabilistic databases) is covered by IsSafe,
// Probability, Uniform and the counting functions.
package certainty

import (
	"context"
	"math/big"

	"github.com/cqa-go/certainty/internal/answers"
	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/reduction"
	"github.com/cqa-go/certainty/internal/solver"
)

// Core vocabulary. The aliases expose the internal implementations as the
// public API; constructing and inspecting queries, databases and results
// happens through these names.
type (
	// Term is a variable or constant in an atom.
	Term = cq.Term
	// Atom is a relational atom R(x̄ | ȳ) with the primary key left of
	// the bar.
	Atom = cq.Atom
	// Query is a Boolean conjunctive query (a set of atoms).
	Query = cq.Query
	// Valuation maps variables to constants.
	Valuation = cq.Valuation
	// VarSet is a set of variable names.
	VarSet = cq.VarSet
	// Fact is a ground atom stored in a database.
	Fact = db.Fact
	// DB is an uncertain database.
	DB = db.DB
	// AttackGraph is the attack graph of an acyclic self-join-free query.
	AttackGraph = core.AttackGraph
	// Class is the complexity classification of CERTAINTY(q).
	Class = core.Class
	// Classification carries the class, the witnessing attack graph and a
	// human-readable reason.
	Classification = core.Classification
	// Result is a solved CERTAINTY(q) instance with its method.
	Result = solver.Result
	// Method identifies the decision procedure used.
	Method = solver.Method
	// Formula is a first-order formula (certain rewritings).
	Formula = fo.Formula
	// ProbDB is a block-independent-disjoint probabilistic database.
	ProbDB = prob.ProbDB
	// Theorem2Reduction is the executable reduction of Theorem 2.
	Theorem2Reduction = reduction.Theorem2
	// Answer is a result tuple for a query with free variables.
	Answer = answers.Answer
	// Answers carries the certain and possible answers of a non-Boolean
	// query.
	Answers = answers.Result
)

// Complexity classes of CERTAINTY(q) (see Class).
const (
	ClassFO                   = core.ClassFO
	ClassPTimeTerminal        = core.ClassPTimeTerminal
	ClassPTimeACk             = core.ClassPTimeACk
	ClassPTimeCk              = core.ClassPTimeCk
	ClassCoNPComplete         = core.ClassCoNPComplete
	ClassOpenConjecturedPTime = core.ClassOpenConjecturedPTime
)

// Decision methods (see Method).
const (
	MethodFO            = solver.MethodFO
	MethodTerminal      = solver.MethodTerminal
	MethodACk           = solver.MethodACk
	MethodCk            = solver.MethodCk
	MethodFalsifying    = solver.MethodFalsifying
	MethodBruteForce    = solver.MethodBruteForce
	MethodSafeRewriting = solver.MethodSafeRewriting
)

// Var returns a variable term.
func Var(name string) Term { return cq.Var(name) }

// Const returns a constant term.
func Const(value string) Term { return cq.Const(value) }

// NewAtom builds an atom whose first keyLen arguments form the primary key.
func NewAtom(rel string, keyLen int, args ...Term) Atom { return cq.NewAtom(rel, keyLen, args...) }

// NewQuery builds a Boolean conjunctive query.
func NewQuery(atoms ...Atom) Query { return cq.NewQuery(atoms...) }

// NewFact builds a database fact.
func NewFact(rel string, keyLen int, args ...string) Fact { return db.NewFact(rel, keyLen, args...) }

// NewDB returns an empty uncertain database.
func NewDB() *DB { return db.New() }

// ParseQuery parses the textual query language, e.g.
// "R(x, y | z), S(y | x)" with primary keys left of the bar.
func ParseQuery(input string) (Query, error) { return cq.ParseQuery(input) }

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(input string) Query { return cq.MustParseQuery(input) }

// ParseDB parses a database in the same syntax with constants only; bare
// identifiers denote constants.
func ParseDB(input string) (*DB, error) { return db.Parse(input) }

// MustParseDB is ParseDB panicking on error.
func MustParseDB(input string) *DB { return db.MustParse(input) }

// IsQueryAcyclic reports whether the query has a join tree.
func IsQueryAcyclic(q Query) bool { return jointree.IsAcyclic(q) }

// AttackGraphOf computes the attack graph of an acyclic self-join-free
// query (Definition 3 of the paper).
func AttackGraphOf(q Query) (*AttackGraph, error) {
	return core.BuildAttackGraph(q, jointree.TieBreakLex)
}

// Classify runs the paper's effective method: it determines the complexity
// class of CERTAINTY(q) with the witnessing theorem.
func Classify(q Query) (Classification, error) { return core.Classify(q) }

// Solve decides whether every repair of d satisfies q, dispatching on the
// classification (polynomial algorithms where the paper provides them, an
// exact exponential search otherwise).
func Solve(q Query, d *DB) (Result, error) { return solver.SolveResult(q, d) }

// Certain is Solve returning only the decision.
func Certain(q Query, d *DB) (bool, error) { return solver.Certain(q, d) }

// Governed solving. SolveCtx is Solve under resource governance: the
// context cancels it (Ctrl-C, deadlines), SolveOptions bounds it (step
// budget, wall-clock timeout), panics deep in evaluation come back as
// errors, and a cut-off solve on a coNP-hard instance degrades to an
// OutcomeUnknown verdict carrying partial search evidence and a sampled
// repair-satisfaction estimate instead of failing.
type (
	// Verdict is the three-valued result of a governed solve.
	Verdict = solver.Verdict
	// VerdictOutcome is certain, not certain, or unknown (cut off).
	VerdictOutcome = solver.Outcome
	// VerdictEvidence is the partial progress attached to a cut-off solve.
	VerdictEvidence = solver.Evidence
	// SolveOptions bounds a governed solve; the zero value imposes no
	// limits beyond the context itself.
	SolveOptions = solver.Options
)

// Outcomes of a governed solve (see Verdict).
const (
	OutcomeCertain    = solver.OutcomeCertain
	OutcomeNotCertain = solver.OutcomeNotCertain
	OutcomeUnknown    = solver.OutcomeUnknown
)

// SolveCtx decides certainty under ctx plus the limits in opts; see
// Verdict for how cutoffs degrade gracefully.
//
// Deprecated-style convenience: SolveContext with functional options is the
// unified entry point; SolveCtx remains for callers holding a SolveOptions
// struct.
func SolveCtx(ctx context.Context, q Query, d *DB, opts SolveOptions) (Verdict, error) {
	return solver.SolveCtx(ctx, q, d, opts)
}

// Functional-option solving. SolveContext replaces the former proliferation
// of entry points (Solve, SolveCtx, compiled plans, parallel variants) with
// one governed call configured by options:
//
//	v, err := certainty.SolveContext(ctx, q, d,
//	    certainty.WithBudget(1_000_000),
//	    certainty.WithDeadline(2*time.Second),
//	    certainty.WithShards(-1), // component-partitioned parallel solve
//	)
//
// Conclusive verdicts are identical across every option combination;
// options change resource limits and scheduling, never answers.
type (
	// SolveOption configures SolveContext and SolveBatch.
	SolveOption = solver.Option
	// BatchInstance is one (query, database) instance of a batch.
	BatchInstance = solver.BatchItem
	// BatchVerdict is one batch instance's outcome.
	BatchVerdict = solver.BatchResult
)

// Options for SolveContext and SolveBatch (see internal/solver for the full
// set).
var (
	// WithBudget caps governor search steps (0 = unlimited).
	WithBudget = solver.WithBudget
	// WithDeadline bounds wall-clock solve time.
	WithDeadline = solver.WithDeadline
	// WithShards enables component-partitioned parallel solving with at
	// most n data shards per query component (< 0 = automatic).
	WithShards = solver.WithShards
	// WithDegradeSamples caps post-cutoff Monte-Carlo sampling (< 0
	// disables it).
	WithDegradeSamples = solver.WithDegradeSamples
	// WithSampleSeed makes the degradation sampler deterministic.
	WithSampleSeed = solver.WithSampleSeed
	// WithObserver streams batch results as items complete (SolveBatch).
	WithObserver = solver.WithObserver
)

// SolveContext is the unified governed solve: cancellation from ctx, limits
// and scheduling from the options.
func SolveContext(ctx context.Context, q Query, d *DB, opts ...SolveOption) (Verdict, error) {
	return solver.Solve(ctx, q, d, opts...)
}

// SolveBatch decides many instances at once, amortizing classification and
// plan compilation across items that share a canonical query and fanning
// the work out on the bounded worker pool. Results are indexed in item
// order; add WithObserver to stream them as they complete.
func SolveBatch(ctx context.Context, items []BatchInstance, opts ...SolveOption) []BatchVerdict {
	return solver.SolveBatch(ctx, items, opts...)
}

// CertainBruteForce decides certainty by enumerating every repair
// (exponential ground truth).
func CertainBruteForce(q Query, d *DB) bool { return solver.BruteForce(q, d) }

// CertainBruteForceCtx is CertainBruteForce honoring ctx (cancellation,
// or a budget/deadline governor attached by SolveCtx-style callers).
func CertainBruteForceCtx(ctx context.Context, q Query, d *DB) (bool, error) {
	return solver.BruteForceCtx(ctx, q, d)
}

// CertainAnswers lifts certainty to queries with free variables: it
// returns the tuples ā (over the listed variables, in order) for which
// q[x̄↦ā] holds in every repair, along with the possible answers.
func CertainAnswers(q Query, free []string, d *DB) (*Answers, error) {
	return answers.Certain(q, free, d)
}

// CertainAnswersParallel is CertainAnswers with per-candidate decisions
// fanned out across workers goroutines (0 = GOMAXPROCS).
func CertainAnswersParallel(q Query, free []string, d *DB, workers int) (*Answers, error) {
	return answers.CertainParallel(q, free, d, workers)
}

// PossibleAnswers returns the tuples for which q[x̄↦ā] holds in at least
// one repair (equivalently, in d itself, for self-join-free queries).
func PossibleAnswers(q Query, free []string, d *DB) ([]Answer, error) {
	return answers.Possible(q, free, d)
}

// FalsifyingRepair searches for a repair falsifying q, with pruning.
func FalsifyingRepair(q Query, d *DB) ([]Fact, bool) { return solver.FalsifyingRepair(q, d) }

// FalsifyingRepairCtx is FalsifyingRepair honoring ctx; on cancellation
// the partial search is abandoned and ctx's error returned.
func FalsifyingRepairCtx(ctx context.Context, q Query, d *DB) ([]Fact, bool, error) {
	return solver.FalsifyingRepairContext(ctx, q, d)
}

// Eval reports whether d satisfies q (ordinary, non-certain semantics).
func Eval(q Query, d *DB) bool { return engine.Eval(q, d) }

// Embeddings returns all valuations θ with θ(q) ⊆ d.
func Embeddings(q Query, d *DB) []Valuation { return engine.Embeddings(q, d) }

// Purify returns a database purified relative to q (every fact participates
// in an embedding) preserving certainty (Lemma 1 of the paper).
func Purify(q Query, d *DB) *DB { return engine.Purify(q, d) }

// RewriteFO constructs a certain first-order rewriting of q; it exists iff
// the attack graph of q is acyclic (Theorem 1).
func RewriteFO(q Query) (Formula, error) { return fo.RewriteAcyclic(q) }

// RewriteSQL renders the certain first-order rewriting as SQL (assuming a
// table per relation with columns c1..cn and an active-domain view adom).
func RewriteSQL(q Query) (string, error) {
	phi, err := fo.RewriteAcyclic(q)
	if err != nil {
		return "", err
	}
	return fo.SQL(phi)
}

// EvalFormula evaluates a first-order sentence on a database with
// active-domain quantifier semantics.
func EvalFormula(f Formula, d *DB) (bool, error) { return fo.Eval(f, d) }

// EvalFormulaWith evaluates a formula whose free variables are bound by
// env.
func EvalFormulaWith(f Formula, d *DB, env Valuation) (bool, error) {
	return fo.EvalWith(f, d, env)
}

// CompiledFormula is a formula compiled to a closure tree for fast
// repeated evaluation.
type CompiledFormula = fo.Compiled

// CompileFormula compiles a formula; repeated evaluation through the
// result is several times faster than EvalFormula.
func CompileFormula(f Formula) (*CompiledFormula, error) { return fo.Compile(f) }

// RewriteFOFree constructs a certain rewriting with free variables: φ(x̄)
// holds of ā iff q[x̄↦ā] is certain. It exists iff freezing the free
// variables leaves an acyclic attack graph — which can hold even when the
// Boolean problem is not FO (freezing x1 of C(2), for instance).
func RewriteFOFree(q Query, free []string) (Formula, error) {
	return fo.RewriteAcyclicFree(q, free)
}

// RewriteSafe constructs the Theorem 6 certain rewriting for safe queries;
// unlike RewriteFO it needs no join tree, covering safe queries with cyclic
// hypergraphs.
func RewriteSafe(q Query) (Formula, error) { return fo.RewriteSafe(q) }

// IsSafe runs the Dalvi–Ré–Suciu safety test (Function IsSafe of the
// paper); safe queries have PROBABILITY(q) in FP, unsafe ones are ♯P-hard.
func IsSafe(q Query) bool { return prob.IsSafe(q) }

// NewProbDB returns an empty BID probabilistic database.
func NewProbDB() *ProbDB { return prob.New() }

// Uniform converts an uncertain database to the uniform-repairs BID
// probabilistic database.
func Uniform(d *DB) *ProbDB { return prob.Uniform(d) }

// Probability evaluates Pr(q) on a BID probabilistic database with the
// polynomial safe plan; it fails on unsafe queries.
func Probability(q Query, p *ProbDB) (*big.Rat, error) { return prob.Probability(q, p) }

// ProbabilityByWorlds evaluates Pr(q) exactly by possible-world
// enumeration (exponential; works for every query).
func ProbabilityByWorlds(q Query, p *ProbDB) *big.Rat { return prob.ProbabilityByWorlds(q, p) }

// CountSatisfyingRepairs solves ♯CERTAINTY(q) by enumeration.
func CountSatisfyingRepairs(q Query, d *DB) *big.Int { return prob.CountSatisfyingRepairs(q, d) }

// CountSatisfyingSharded solves ♯CERTAINTY(q) through the shard
// decomposition — exact, same number as CountSatisfyingRepairs, but the
// enumeration splits along independent sub-instances solved in parallel
// (∏ᵢNᵢ − ∏ᵢ(Nᵢ−sᵢ) per connected component, products across components).
// maxShards caps the shards per component; ≤ 0 keeps the finest partition.
func CountSatisfyingSharded(q Query, d *DB, maxShards int) *big.Int {
	return prob.CountSatisfyingSharded(q, d, maxShards)
}

// UniformProbabilitySharded computes Pr(q) under uniform repair choice
// through the shard decomposition (1 − ∏ᵢ(1−pᵢ) per component, products
// across components); exact, same rational as world enumeration.
func UniformProbabilitySharded(q Query, d *DB, maxShards int) *big.Rat {
	return prob.UniformProbabilitySharded(q, d, maxShards)
}

// CountViaUniform solves ♯CERTAINTY(q) through the uniform BID safe plan
// (polynomial for safe queries).
func CountViaUniform(q Query, d *DB) (*big.Int, error) { return prob.CountViaUniform(q, d) }

// EstimateCertain tests certainty statistically by sampling uniform
// repairs; a false answer comes with a witnessing repair, a true answer is
// evidence only.
func EstimateCertain(q Query, d *DB, samples int, seed int64) (bool, *DB) {
	return prob.EstimateCertain(q, d, samples, seed)
}

// NewTheorem2Reduction prepares the Theorem 2 reduction from
// CERTAINTY(q0) to CERTAINTY(q) for a query q with a strong attack cycle.
func NewTheorem2Reduction(q Query) (*Theorem2Reduction, error) { return reduction.NewTheorem2(q) }

// CompleteAllKey applies the Lemma 9 completion: facts for every
// active-domain tuple are added to the all-key relations of q missing from
// qPrime.
func CompleteAllKey(q, qPrime Query, d *DB) (*DB, error) { return reduction.Lemma9(q, qPrime, d) }

// Paper query families.

// Q0 is {R0(x | y), S0(y, z | x)}, the coNP-complete seed of Theorem 2.
func Q0() Query { return cq.Q0() }

// Q1 is the running example of Fig. 2 (Examples 2–4).
func Q1() Query { return cq.Q1() }

// Ck is the cycle query C(k) of Definition 8.
func Ck(k int) Query { return cq.Ck(k) }

// ACk is the acyclic cycle query AC(k) of Definition 8.
func ACk(k int) Query { return cq.ACk(k) }

// TerminalCyclesQuery is the Fig. 4-style query whose attack cycles are all
// weak and terminal.
func TerminalCyclesQuery() Query { return cq.TerminalCyclesQuery() }

// TerminalPairsQuery generalizes the Fig. 4 query to n chained weak
// terminal 2-cycles, optionally with an unattacked root atom.
func TerminalPairsQuery(n int, withRoot bool) Query { return gen.TerminalPairsQuery(n, withRoot) }

// OpenCaseQuery is an acyclic query in the class the paper leaves open:
// weak nonterminal attack cycle, no strong cycle, not AC(k) (Section 6.2,
// Conjecture 1).
func OpenCaseQuery() Query { return gen.OpenCaseQuery() }

// ConferenceQuery is the introduction's query over the Fig. 1 schema.
func ConferenceQuery() Query { return cq.ConferenceQuery() }

// ConferenceDB is the Fig. 1 uncertain database.
func ConferenceDB() *DB { return gen.ConferenceDB() }

// Figure6DB is the Fig. 6 database (purified relative to AC(3)).
func Figure6DB() *DB { return gen.Figure6DB() }

// AnswerProbability pairs an answer tuple with its exact probability under
// uniform repair semantics.
type AnswerProbability = answers.AnswerProbability

// AnswersWithProbabilities returns every possible answer with its exact
// uniform-repair probability, sorted by probability descending; certain
// answers are exactly the probability-1 entries.
func AnswersWithProbabilities(q Query, free []string, d *DB) ([]AnswerProbability, error) {
	return answers.WithProbabilities(q, free, d)
}

// ClassificationCache memoizes classifications keyed by the canonical form
// of the query; safe for concurrent use.
type ClassificationCache = core.Cache

// NewClassificationCache returns an empty classification cache.
func NewClassificationCache() *ClassificationCache { return core.NewCache() }

// CanonicalizeQuery returns the canonical form of a query (atoms sorted,
// variables renamed) plus the variable mapping; isomorphic self-join-free
// queries share a canonical form.
func CanonicalizeQuery(q Query) (Query, map[string]string) { return cq.Canonicalize(q) }

// RandomBID assigns random rational probabilities to an uncertain
// database's facts (each block's mass at most 1); deterministic per seed.
func RandomBID(d *DB, seed int64) *ProbDB { return prob.RandomBID(d, seed) }

// CountSatisfyingDecomposed is CountSatisfyingRepairs factorized over
// variable-disjoint query components — exponentially cheaper when q
// decomposes.
func CountSatisfyingDecomposed(q Query, d *DB) *big.Int {
	return prob.CountSatisfyingDecomposed(q, d)
}

// ExplainPlan returns the evaluation order and index usage the engine
// would apply for q on d.
func ExplainPlan(q Query, d *DB) EvaluationPlan { return engine.Explain(q, d) }

// EvaluationPlan is the engine's evaluation plan (atom order, index use).
type EvaluationPlan = engine.Plan

// SelfCheck runs Solve and cross-checks the result against brute-force
// enumeration when the repair space has at most maxRepairs elements; a
// mismatch (a bug) is returned as an error.
func SelfCheck(q Query, d *DB, maxRepairs int64) (Result, error) {
	return solver.SelfCheck(q, d, maxRepairs)
}
