package certainty_test

import (
	"fmt"

	certainty "github.com/cqa-go/certainty"
)

// The Fig. 1 scenario: classify a query and decide certainty.
func ExampleSolve() {
	d := certainty.ConferenceDB()
	q := certainty.MustParseQuery("C(x, y | 'Rome'), R(x | 'A')")
	res, err := certainty.Solve(q, d)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Classification.Class)
	fmt.Println(res.Certain)
	// Output:
	// first-order expressible (AC0)
	// false
}

func ExampleClassify() {
	cls, err := certainty.Classify(certainty.Q1())
	if err != nil {
		panic(err)
	}
	fmt.Println(cls.Class)
	// Output:
	// coNP-complete (Theorem 2)
}

func ExampleRewriteFO() {
	phi, err := certainty.RewriteFO(certainty.MustParseQuery("R(x | y)"))
	if err != nil {
		panic(err)
	}
	fmt.Println(phi)
	// Output:
	// ∃w1 ((∃w2 R(w1 | w2)) ∧ (∀w2 (R(w1 | w2) → ⊤)))
}

func ExampleCertainAnswers() {
	d := certainty.ConferenceDB()
	q := certainty.MustParseQuery("R(x | 'A')")
	res, err := certainty.CertainAnswers(q, []string{"x"}, d)
	if err != nil {
		panic(err)
	}
	for _, a := range res.Certain {
		fmt.Println("certain:", a[0])
	}
	for _, a := range res.Possible {
		fmt.Println("possible:", a[0])
	}
	// Output:
	// certain: PODS
	// possible: KDD
	// possible: PODS
}

func ExampleProbability() {
	d := certainty.ConferenceDB()
	q := certainty.ConferenceQuery()
	pr, err := certainty.Probability(q, certainty.Uniform(d))
	if err != nil {
		panic(err)
	}
	fmt.Println(pr)
	// Output:
	// 3/4
}

func ExampleFalsifyingRepair() {
	d := certainty.MustParseDB(`
		R(a | b)
		R(a | c)
		S(b | a)
	`)
	q := certainty.MustParseQuery("R(x | y), S(y | x)")
	rep, found := certainty.FalsifyingRepair(q, d)
	fmt.Println(found)
	for _, f := range rep {
		fmt.Println(f)
	}
	// Output:
	// true
	// S(b | a)
	// R(a | c)
}

func ExampleIsSafe() {
	fmt.Println(certainty.IsSafe(certainty.MustParseQuery("R(x | y), S(x | z)")))
	fmt.Println(certainty.IsSafe(certainty.MustParseQuery("R(x | y), S(y | z)")))
	// Output:
	// true
	// false
}

func ExamplePurify() {
	// Example 1 of the paper: S(b | c) joins with nothing, so purification
	// removes its block, which then strands R(a | b) too.
	d := certainty.MustParseDB("R(a | b), S(b | a), S(b | c)")
	q := certainty.MustParseQuery("R(x | y), S(y | x)")
	fmt.Println(certainty.Purify(q, d).Len())
	// Output:
	// 0
}
