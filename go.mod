module github.com/cqa-go/certainty

go 1.22
